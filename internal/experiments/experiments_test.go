package experiments

import (
	"strings"
	"testing"
)

// studyAtScale runs the full pipeline on a heavily scaled-down corpus.
// Cached across tests in the package because it is the expensive fixture.
var cachedStudy *Study

func scaledStudy(t *testing.T) *Study {
	t.Helper()
	if cachedStudy != nil {
		return cachedStudy
	}
	s, err := Run(1, 100, 0, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cachedStudy = s
	return s
}

func TestRunProducesFullGrid(t *testing.T) {
	s := scaledStudy(t)
	if len(s.A4F.Results) != 12 || len(s.ARepair.Results) != 12 {
		t.Fatalf("techniques: %d / %d, want 12", len(s.A4F.Results), len(s.ARepair.Results))
	}
	for tech, results := range s.A4F.Results {
		if len(results) != len(s.A4F.Suite.Specs) {
			t.Errorf("%s covered %d/%d A4F specs", tech, len(results), len(s.A4F.Suite.Specs))
		}
	}
}

func TestTableIRenders(t *testing.T) {
	s := scaledStudy(t)
	table := s.TableI()
	for _, want := range []string{"classroom", "trash", "Student", "A4F summary", "ARepair summary", "Total"} {
		if !strings.Contains(table, want) {
			t.Errorf("Table I missing %q:\n%s", want, table)
		}
	}
	t.Log("\n" + table)
}

func TestFigure2ShapeHolds(t *testing.T) {
	s := scaledStudy(t)
	rows := s.Figure2()
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Figure2Row{}
	for _, r := range rows {
		if r.TM < 0 || r.TM > 1 || r.SM < 0 || r.SM > 1 {
			t.Errorf("%s similarity out of range: %+v", r.Technique, r)
		}
		byName[r.Technique] = r
	}
	// Traditional tools make minimal edits: their similarity should be
	// high in absolute terms.
	for _, tech := range []string{"ATR", "BeAFix", "ICEBAR"} {
		if byName[tech].SM < 0.7 {
			t.Errorf("%s SM = %.3f, expected high structural similarity", tech, byName[tech].SM)
		}
	}
	t.Log("\n" + s.RenderFigure2())
}

func TestFigure3Correlations(t *testing.T) {
	s := scaledStudy(t)
	names, matrix, maxP := s.Figure3()
	if len(names) != 12 {
		t.Fatal("names")
	}
	for i := range names {
		if matrix[i][i] < 0.999 {
			t.Errorf("self correlation of %s = %f", names[i], matrix[i][i])
		}
		for j := range names {
			if matrix[i][j] != matrix[j][i] {
				t.Errorf("matrix not symmetric at %d,%d", i, j)
			}
		}
	}
	_ = maxP // significance is checked on the full corpus in EXPERIMENTS.md
	t.Log("\n" + s.RenderFigure3())
}

func TestTableIIHybridInvariants(t *testing.T) {
	s := scaledStudy(t)
	hybrids := s.TableII()
	if len(hybrids) != 32 {
		t.Fatalf("hybrids = %d, want 32 (4 traditional x 8 LLM)", len(hybrids))
	}
	for _, h := range hybrids {
		if h.Overlap > h.TraditionalRepairs || h.Overlap > h.LLMRepairs {
			t.Errorf("%s+%s: overlap %d exceeds parts %d/%d",
				h.Traditional, h.LLM, h.Overlap, h.TraditionalRepairs, h.LLMRepairs)
		}
		if h.Union != h.TraditionalRepairs+h.LLMRepairs-h.Overlap {
			t.Errorf("%s+%s: union arithmetic broken", h.Traditional, h.LLM)
		}
		if h.Union < h.TraditionalRepairs || h.Union < h.LLMRepairs {
			t.Errorf("%s+%s: hybrid union below its parts", h.Traditional, h.LLM)
		}
	}
	t.Log("\n" + s.RenderTableII())
	t.Log("\n" + s.RenderFigure4())
	t.Log("\n" + s.Summary())
}

func TestFigure4RegionsConsistent(t *testing.T) {
	s := scaledStudy(t)
	for _, c := range s.Figure4() {
		if c.OnlyTraditional < 0 || c.OnlyLLM < 0 || c.Both < 0 {
			t.Errorf("negative Venn region: %+v", c)
		}
		if c.OnlyTraditional+c.OnlyLLM+c.Both != c.Hybrid.Union {
			t.Errorf("Venn regions do not sum to union: %+v", c)
		}
	}
}
