// Package atr reimplements the ATR technique (Zheng et al. — ISSTA'22):
// template-based repair for Alloy driven by the difference between
// counterexamples and satisfying instances.
//
// For each failing assertion, ATR:
//
//  1. Takes the analyzer's counterexample.
//  2. Uses a partial MaxSAT query — hard: implicit constraints, facts, and
//     the assertion; soft: agreement with the counterexample's tuples — to
//     find the *nearest* satisfying instance, exactly as the original uses
//     its PMaxSAT solver.
//  3. Diffs the two instances; relations that differ localize the fault.
//  4. Instantiates repair templates (operator flips, relation and variable
//     substitutions, union/difference/closure templates) at constraint sites
//     mentioning the differing relations.
//  5. Prunes candidates that still accept the counterexample or reject the
//     nearest satisfying instance, then validates survivors with the full
//     analyzer oracle.
package atr

import (
	"context"
	"sort"

	"specrepair/internal/alloy/ast"
	"specrepair/internal/alloy/printer"
	"specrepair/internal/alloy/types"
	"specrepair/internal/anacache"
	"specrepair/internal/analyzer"
	"specrepair/internal/bounds"
	"specrepair/internal/instance"
	"specrepair/internal/mutation"
	"specrepair/internal/repair"
	"specrepair/internal/sat"
	"specrepair/internal/telemetry"
	"specrepair/internal/translate"
)

// Options bounds the template search.
type Options struct {
	// MaxCandidates caps analyzer validations.
	MaxCandidates int
	// Budget selects template aggressiveness.
	Budget mutation.Budget
	// Analyzer overrides the default analyzer (mainly for tests).
	Analyzer *analyzer.Analyzer
	// Cache backs the default analyzer when Analyzer is nil, so candidate
	// validations are shared with every other technique on the same cache.
	Cache *anacache.Cache
	// Telemetry records the search's live effort, including the PMaxSAT
	// nearest-instance solves. Nil disables instrumentation.
	Telemetry *telemetry.Collector
}

// DefaultOptions mirror the study's configuration.
func DefaultOptions() Options {
	return Options{MaxCandidates: 3000, Budget: mutation.BudgetTemplates}
}

// Tool is the ATR technique.
type Tool struct {
	opts       Options
	an         *analyzer.Analyzer
	candidates *telemetry.Counter
}

// New returns the technique with the given options.
func New(opts Options) *Tool {
	if opts.MaxCandidates == 0 {
		d := DefaultOptions()
		d.Analyzer = opts.Analyzer
		d.Cache = opts.Cache
		d.Telemetry = opts.Telemetry
		opts = d
	}
	an := opts.Analyzer
	if an == nil {
		an = analyzer.New(analyzer.Options{Cache: opts.Cache, Telemetry: opts.Telemetry})
	}
	return &Tool{
		opts:       opts,
		an:         an,
		candidates: opts.Telemetry.TechCounter("ATR", "candidates"),
	}
}

var _ repair.Technique = (*Tool)(nil)

// Name implements repair.Technique.
func (t *Tool) Name() string { return "ATR" }

// Repair implements repair.Technique.
func (t *Tool) Repair(ctx context.Context, p repair.Problem) (repair.Outcome, error) {
	out := repair.Outcome{}

	// Context-bound analyzer for every analysis in this call, including the
	// PMaxSAT nearest-instance solves.
	an := t.an.WithContext(ctx)

	ok, err := repair.OracleAllCommandsPass(ctx, t.an, p.Faulty)
	out.Stats.AnalyzerCalls++
	if err != nil {
		return out, err
	}
	if ok {
		out.Repaired = true
		out.Candidate = p.Faulty.Clone()
		return out, nil
	}

	// Collect (counterexample, nearest satisfying instance) pairs per
	// failing check. The localize span groups the counterexample reruns and
	// the PMaxSAT nearest-instance solves.
	locSpan := telemetry.SpanFromContext(ctx).Child("atr.localize")
	pairs, err := t.instancePairs(telemetry.ContextWithSpan(ctx, locSpan), an.WithSpan(locSpan), p.Faulty)
	locSpan.SetMetric("pairs", int64(len(pairs)))
	locSpan.End()
	if err != nil {
		return out, err
	}
	out.Stats.AnalyzerCalls += len(p.Faulty.Commands)

	suspiciousRels := map[string]bool{}
	for _, pr := range pairs {
		for _, rel := range diffRelations(pr.cex, pr.sat) {
			suspiciousRels[rel] = true
		}
	}

	eng, err := mutation.NewEngine(p.Faulty)
	if err != nil {
		return out, err
	}
	low, _, err := types.Lower(p.Faulty)
	if err != nil {
		return out, err
	}
	_ = low

	// Candidate sites: those mentioning a suspicious relation first, the
	// rest after — the diff localizes, the template budget extends.
	var sites, rest []mutation.ScopedSite
	for _, s := range eng.Sites() {
		if len(suspiciousRels) == 0 || mentionsAny(s.Node, suspiciousRels) {
			sites = append(sites, s)
		} else {
			rest = append(rest, s)
		}
	}
	sites = append(sites, rest...)

	// One incremental evaluation session spans the whole candidate stream
	// (templates never touch signature paragraphs, so the shared bounds and
	// learned clauses apply to every candidate).
	oracle := an.Evaluator(p.Faulty)

	// The enumerate span groups every template validation; candidate.eval
	// spans nest under it via the oracle.
	enumSpan := telemetry.SpanFromContext(ctx).Child("atr.enumerate")
	enumSpan.SetMetric("sites", int64(len(sites)))
	oracle.SetSpan(enumSpan)
	defer func() {
		enumSpan.SetMetric("candidates", int64(out.Stats.CandidatesTried))
		enumSpan.End()
	}()

	seen := map[string]bool{printer.Module(p.Faulty): true}
	for _, s := range sites {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		cands := eng.Candidates(s, t.opts.Budget)
		for _, c := range cands {
			if out.Stats.CandidatesTried >= t.opts.MaxCandidates {
				return out, nil
			}
			candMod, err := eng.Apply(s.Site, c)
			if err != nil {
				continue
			}
			key := printer.Module(candMod)
			if seen[key] {
				continue
			}
			seen[key] = true
			if _, err := types.Check(candMod.Clone()); err != nil {
				continue
			}
			if !t.survivesPruning(candMod, pairs) {
				continue
			}
			out.Stats.CandidatesTried++
			t.candidates.Inc()
			pass, err := oracle.PassesAll(candMod)
			out.Stats.AnalyzerCalls++
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return out, cerr
				}
				continue
			}
			if pass {
				out.Repaired = true
				out.Candidate = candMod
				return out, nil
			}
		}
		// Conjunct dropping as an over-constraint template.
		drops, err := mutation.DropConjunct(eng.Mod, s.Site)
		if err != nil {
			continue
		}
		for _, candMod := range drops {
			if out.Stats.CandidatesTried >= t.opts.MaxCandidates {
				return out, nil
			}
			key := printer.Module(candMod)
			if seen[key] {
				continue
			}
			seen[key] = true
			if !t.survivesPruning(candMod, pairs) {
				continue
			}
			out.Stats.CandidatesTried++
			t.candidates.Inc()
			pass, err := oracle.PassesAll(candMod)
			out.Stats.AnalyzerCalls++
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return out, cerr
				}
				continue
			}
			if pass {
				out.Repaired = true
				out.Candidate = candMod
				return out, nil
			}
		}
	}
	return out, nil
}

type instancePair struct {
	cex *instance.Instance
	sat *instance.Instance
}

// instancePairs finds, for each failing check command, the counterexample
// and the PMaxSAT-nearest satisfying instance.
func (t *Tool) instancePairs(ctx context.Context, an *analyzer.Analyzer, mod *ast.Module) ([]instancePair, error) {
	low, info, err := types.Lower(mod)
	if err != nil {
		return nil, err
	}
	var pairs []instancePair
	for _, cmd := range low.Commands {
		if cmd.Kind != ast.CmdCheck {
			continue
		}
		res, err := an.RunCommand(mod, cmd)
		if err != nil {
			return nil, err
		}
		if !res.Sat || res.Instance == nil {
			continue
		}
		near, err := t.nearestSatisfying(ctx, low, info, cmd, res.Instance)
		if err != nil || near == nil {
			// No satisfying instance in scope; keep the counterexample for
			// relation-level localization anyway.
			pairs = append(pairs, instancePair{cex: res.Instance})
			continue
		}
		pairs = append(pairs, instancePair{cex: res.Instance, sat: near})
	}
	return pairs, nil
}

// nearestSatisfying solves a weighted partial MaxSAT problem: hard clauses
// demand facts, implicit constraints, and the assertion all hold; soft
// clauses prefer each relation-tuple variable to keep the value it has in
// the counterexample.
func (t *Tool) nearestSatisfying(ctx context.Context, low *ast.Module, info *types.Info, cmd *ast.Command, cex *instance.Instance) (*instance.Instance, error) {
	b, err := bounds.Build(info, cmd.Scope)
	if err != nil {
		return nil, err
	}
	tr := translate.New(info, b)
	tr.SetContext(ctx)

	implicit, err := tr.ImplicitConstraints()
	if err != nil {
		return nil, err
	}
	parts := []translate.Node{implicit}
	for _, f := range low.Facts {
		n, err := tr.Formula(f.Body, nil)
		if err != nil {
			return nil, err
		}
		parts = append(parts, n)
	}
	as := low.LookupAssert(cmd.Target)
	if as == nil {
		return nil, nil
	}
	n, err := tr.Formula(as.Body, nil)
	if err != nil {
		return nil, err
	}
	parts = append(parts, n)

	ms := sat.NewMaxSolver(tr.NumVars())
	ms.MaxConflicts = analyzer.DefaultMaxConflicts
	ms.Context = ctx
	ms.Telemetry = t.opts.Telemetry
	ms.Span = telemetry.SpanFromContext(ctx)
	cb := translate.NewCNFBuilder(ms, tr.NumVars())
	cb.AddAssert(translate.And(parts...))

	// Soft agreement with the counterexample.
	addSoft(ms, tr, b, cex)

	res := ms.Solve()
	if res.Status != sat.StatusSat {
		return nil, nil
	}
	return tr.Decode(res.Model), nil
}

// addSoft adds one unit soft clause per relation variable, preferring the
// counterexample's value.
func addSoft(ms *sat.MaxSolver, tr *translate.Translator, b *bounds.Bounds, cex *instance.Instance) {
	// Deterministic relation order: soft-clause insertion order is MaxSAT
	// tie-breaking order, and study outputs must not vary run to run.
	names := make([]string, 0, len(b.Rels))
	for name := range b.Rels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cexTS, ok := cex.Rels[name]
		if !ok {
			continue
		}
		m, ok := tr.RelMatrix(name)
		if !ok {
			continue
		}
		for i, tuple := range m.Tuples() {
			node := m.Nodes()[i]
			v, isVar := translate.VarOf(node)
			if !isVar {
				continue
			}
			if cexTS.Contains(tuple) {
				ms.AddSoft(1, sat.PosLit(v))
			} else {
				ms.AddSoft(1, sat.NegLit(v))
			}
		}
	}
}

// diffRelations lists relations whose valuation differs between the two
// instances (all relations of the counterexample when sat is nil).
func diffRelations(cex, satInst *instance.Instance) []string {
	var out []string
	if satInst == nil {
		for name := range cex.Rels {
			out = append(out, name)
		}
		sort.Strings(out)
		return out
	}
	for name, ts := range cex.Rels {
		if !ts.Equal(satInst.Rel(name)) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// mentionsAny reports whether the expression references one of the named
// relations (primed references count for the base name).
func mentionsAny(e ast.Expr, names map[string]bool) bool {
	found := false
	ast.Walk(e, func(x ast.Expr) bool {
		if id, ok := x.(*ast.Ident); ok && (names[id.Name] || names[id.Name+"'"]) {
			found = true
			return false
		}
		return !found
	})
	return found
}

// survivesPruning screens a candidate against every (cex, sat) pair: the
// candidate's facts must reject each counterexample and keep accepting each
// nearest satisfying instance.
func (t *Tool) survivesPruning(cand *ast.Module, pairs []instancePair) bool {
	if len(pairs) == 0 {
		return true
	}
	low, _, err := types.Lower(cand)
	if err != nil {
		return false
	}
	factsHold := func(inst *instance.Instance) (bool, bool) {
		ev := &instance.Evaluator{Mod: low, Inst: inst}
		for _, f := range low.Facts {
			v, err := ev.EvalFormula(f.Body, nil)
			if err != nil {
				return false, false
			}
			if !v {
				return false, true
			}
		}
		return true, true
	}
	for _, pr := range pairs {
		if pr.cex != nil {
			holds, ok := factsHold(pr.cex)
			if ok && holds {
				// Candidate still admits the counterexample: only viable if
				// the assertion changed, which ATR does not do. Prune.
				return false
			}
		}
		if pr.sat != nil {
			holds, ok := factsHold(pr.sat)
			if ok && !holds {
				return false
			}
		}
	}
	return true
}
