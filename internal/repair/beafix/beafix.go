// Package beafix reimplements the BeAFix technique (Brida et al. — ICSE'21):
// bounded exhaustive exploration of mutation-based repair candidates,
// validated against the property oracles already present in the model
// (predicate satisfiability and assertion validity), with pruning to tame
// the combinatorial space.
//
// Pruning strategies, mirroring the paper's:
//
//  1. Suspicious-site restriction: only constraints implicated by fault
//     localization are mutated (unless pruning is disabled).
//  2. Candidate deduplication by canonical printing.
//  3. Counterexample screening: a mutant goes to the (expensive) analyzer
//     only when the mutated constraint evaluates differently from the
//     original on at least one cached counterexample — an unchanged
//     evaluation cannot flip the failing verdict.
package beafix

import (
	"context"

	"specrepair/internal/alloy/ast"
	"specrepair/internal/alloy/printer"
	"specrepair/internal/alloy/types"
	"specrepair/internal/anacache"
	"specrepair/internal/analyzer"
	"specrepair/internal/faultloc"
	"specrepair/internal/instance"
	"specrepair/internal/mutation"
	"specrepair/internal/repair"
	"specrepair/internal/telemetry"
)

// Options bounds the exhaustive search.
type Options struct {
	// MaxDepth is the maximum number of simultaneous mutations (the
	// bounded-exhaustive depth). Depth 2 covers the benchmark fault mix.
	MaxDepth int
	// MaxCandidates caps total analyzer validations.
	MaxCandidates int
	// Budget selects mutation aggressiveness.
	Budget mutation.Budget
	// DisablePruning turns off suspicious-site restriction and
	// counterexample screening; used by the ablation benchmark.
	DisablePruning bool
	// Analyzer overrides the default analyzer (mainly for tests).
	Analyzer *analyzer.Analyzer
	// Cache backs the default analyzer when Analyzer is nil, so candidate
	// validations are shared with every other technique on the same cache.
	Cache *anacache.Cache
	// Telemetry records the search's live effort (candidates tried, solver
	// work). Nil disables instrumentation; results are unaffected either way.
	Telemetry *telemetry.Collector
}

// DefaultOptions mirror the study's configuration.
func DefaultOptions() Options {
	return Options{MaxDepth: 2, MaxCandidates: 4000, Budget: mutation.BudgetRelations}
}

// Tool is the BeAFix technique.
type Tool struct {
	opts       Options
	an         *analyzer.Analyzer
	candidates *telemetry.Counter
}

// New returns the technique with the given options.
func New(opts Options) *Tool {
	if opts.MaxDepth == 0 {
		d := DefaultOptions()
		d.DisablePruning = opts.DisablePruning
		d.Analyzer = opts.Analyzer
		d.Cache = opts.Cache
		d.Telemetry = opts.Telemetry
		opts = d
	}
	an := opts.Analyzer
	if an == nil {
		an = analyzer.New(analyzer.Options{Cache: opts.Cache, Telemetry: opts.Telemetry})
	}
	return &Tool{
		opts:       opts,
		an:         an,
		candidates: opts.Telemetry.TechCounter("BeAFix", "candidates"),
	}
}

var _ repair.Technique = (*Tool)(nil)

// Name implements repair.Technique.
func (t *Tool) Name() string { return "BeAFix" }

// Repair implements repair.Technique.
func (t *Tool) Repair(ctx context.Context, p repair.Problem) (repair.Outcome, error) {
	out := repair.Outcome{}

	// Every analysis below — oracle checks, instance collection, candidate
	// validation — runs on this context-bound analyzer.
	an := t.an.WithContext(ctx)

	ok, err := repair.OracleAllCommandsPass(ctx, t.an, p.Faulty)
	out.Stats.AnalyzerCalls++
	if err != nil {
		return out, err
	}
	if ok {
		out.Repaired = true
		out.Candidate = p.Faulty.Clone()
		return out, nil
	}

	failing, passing, err := faultloc.CollectInstances(an, p.Faulty)
	out.Stats.AnalyzerCalls += 2 * len(p.Faulty.Commands)
	if err != nil {
		return out, err
	}

	// Suspicious sites (or all formula sites when pruning is off). The
	// no-signal fallback to exhaustive search is job-local: mutating the
	// shared options here would disable pruning for every later job on this
	// worker, making results depend on job-to-worker scheduling.
	pruning := !t.opts.DisablePruning
	suspicious := map[string]bool{}
	if pruning {
		ranked, err := faultloc.Localize(p.Faulty, failing, passing)
		if err != nil {
			return out, err
		}
		for _, r := range ranked {
			if r.Score > 0 || r.FailGuilty > 0 {
				suspicious[r.Site.Site.String()] = true
			}
		}
		// No signal: fall back to exhaustive.
		if len(suspicious) == 0 {
			pruning = false
		}
	}

	low, _, err := types.Lower(p.Faulty)
	if err != nil {
		return out, err
	}

	// One incremental evaluation session spans the whole candidate stream:
	// every mutant shares the base's signatures, so bounds, relation
	// variables, and learned clauses carry over between validations.
	oracle := an.Evaluator(p.Faulty)

	// Breadth-first over mutation depth: each frontier entry is a module.
	frontier := []*ast.Module{p.Faulty.Clone()}
	seen := map[string]bool{printer.Module(p.Faulty): true}

	// One trace span per BFS depth; candidate evaluations nest under the
	// active one. The deferred End closes whichever span an early return
	// leaves open (End is idempotent).
	parent := telemetry.SpanFromContext(ctx)
	var depthSpan *telemetry.Span
	defer func() { depthSpan.End() }()

	for depth := 1; depth <= t.opts.MaxDepth; depth++ {
		depthSpan.End()
		depthSpan = parent.Child("beafix.depth")
		depthSpan.SetMetric("depth", int64(depth))
		depthSpan.SetMetric("frontier", int64(len(frontier)))
		oracle.SetSpan(depthSpan)
		var next []*ast.Module
		for _, base := range frontier {
			eng, err := mutation.NewEngine(base)
			if err != nil {
				continue
			}
			for _, s := range eng.Sites() {
				if err := ctx.Err(); err != nil {
					return out, err
				}
				if pruning && depth == 1 && !t.siteAllowed(s, suspicious) {
					continue
				}
				for _, c := range eng.Candidates(s, t.opts.Budget) {
					if out.Stats.CandidatesTried >= t.opts.MaxCandidates {
						out.Candidate = nil
						return out, nil
					}
					cand, err := eng.Apply(s.Site, c)
					if err != nil {
						continue
					}
					key := printer.Module(cand)
					if seen[key] {
						continue
					}
					seen[key] = true
					if _, err := types.Check(cand.Clone()); err != nil {
						continue
					}
					// Counterexample screening.
					if pruning && !t.changesOnInstances(low, cand, s, c, failing) {
						continue
					}
					out.Stats.CandidatesTried++
					t.candidates.Inc()
					pass, err := oracle.PassesAll(cand)
					out.Stats.AnalyzerCalls++
					if err != nil {
						if cerr := ctx.Err(); cerr != nil {
							return out, cerr
						}
						continue
					}
					if pass {
						out.Repaired = true
						out.Candidate = cand
						return out, nil
					}
					if depth < t.opts.MaxDepth && len(next) < 40 {
						next = append(next, cand)
					}
				}
				// Conjunct dropping at block sites.
				drops, err := mutation.DropConjunct(eng.Mod, s.Site)
				if err != nil {
					continue
				}
				for _, cand := range drops {
					if out.Stats.CandidatesTried >= t.opts.MaxCandidates {
						out.Candidate = nil
						return out, nil
					}
					key := printer.Module(cand)
					if seen[key] {
						continue
					}
					seen[key] = true
					out.Stats.CandidatesTried++
					t.candidates.Inc()
					pass, err := oracle.PassesAll(cand)
					out.Stats.AnalyzerCalls++
					if err != nil {
						if cerr := ctx.Err(); cerr != nil {
							return out, cerr
						}
						continue
					}
					if pass {
						out.Repaired = true
						out.Candidate = cand
						return out, nil
					}
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return out, nil
}

// siteAllowed reports whether the site lies within a suspicious conjunct.
func (t *Tool) siteAllowed(s mutation.ScopedSite, suspicious map[string]bool) bool {
	// A site is allowed when any prefix of its path was marked suspicious.
	for l := 0; l <= len(s.Path); l++ {
		prefix := mutation.Site{Container: s.Container, Path: s.Path[:l]}
		if suspicious[prefix.String()] {
			return true
		}
	}
	return false
}

// changesOnInstances reports whether replacing site s with candidate c
// changes the truth value of the enclosing container's body on at least one
// failing instance — the cheap screen before full analysis.
func (t *Tool) changesOnInstances(low *ast.Module, cand *ast.Module, s mutation.ScopedSite, c ast.Expr, failing []faultloc.Observation) bool {
	if len(failing) == 0 {
		return true
	}
	candLow, _, err := types.Lower(cand)
	if err != nil {
		return true
	}
	origBody, candBody := containerBodies(low, candLow, s.Container)
	if origBody == nil || candBody == nil {
		return true
	}
	for _, obs := range failing {
		evO := &instance.Evaluator{Mod: low, Inst: obs.Inst}
		evC := &instance.Evaluator{Mod: candLow, Inst: obs.Inst}
		vo, eo := evO.EvalFormula(origBody, nil)
		vc, ec := evC.EvalFormula(candBody, nil)
		if eo != nil || ec != nil {
			return true
		}
		if vo != vc {
			return true
		}
	}
	return false
}

func containerBodies(a, b *ast.Module, c mutation.Container) (ast.Expr, ast.Expr) {
	switch c.Kind {
	case mutation.InFact:
		if c.Index < len(a.Facts) && c.Index < len(b.Facts) {
			return a.Facts[c.Index].Body, b.Facts[c.Index].Body
		}
	case mutation.InPred:
		if c.Index < len(a.Preds) && c.Index < len(b.Preds) {
			// Predicate bodies may have parameters; only closed bodies can
			// be screened.
			if len(a.Preds[c.Index].Params) == 0 {
				return a.Preds[c.Index].Body, b.Preds[c.Index].Body
			}
		}
	case mutation.InFun:
		// Function bodies are expressions; screening does not apply.
	}
	return nil, nil
}
