package repair_test

import (
	"context"
	"testing"

	"specrepair/internal/alloy/ast"
	"specrepair/internal/alloy/parser"
	"specrepair/internal/alloy/printer"
	"specrepair/internal/analyzer"
	"specrepair/internal/aunit"
	"specrepair/internal/repair"
	"specrepair/internal/repair/arepair"
	"specrepair/internal/repair/atr"
	"specrepair/internal/repair/beafix"
	"specrepair/internal/repair/icebar"
)

// The running example: the intended invariant is "no node links to itself",
// but the faulty fact demands the opposite.
const faultySrc = `
sig Node { next: lone Node }
fact Links { all n: Node | n in n.next }
assert NoSelf { no n: Node | n in n.next }
check NoSelf for 3
run { some Node } for 3
`

const groundTruthSrc = `
sig Node { next: lone Node }
fact Links { all n: Node | n not in n.next }
assert NoSelf { no n: Node | n in n.next }
check NoSelf for 3
run { some Node } for 3
`

func mustParse(t *testing.T, src string) *ast.Module {
	t.Helper()
	mod, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// testSuite captures the intent against whatever facts the candidate has:
// chains without self loops must be accepted, self loops rejected, the
// empty instance accepted.
func testSuite() *aunit.Suite {
	s := &aunit.Suite{}
	s.Add(&aunit.Test{
		Name: "chain_accepted",
		Valuation: map[string][][]string{
			"Node": {{"N0"}, {"N1"}},
			"next": {{"N0", "N1"}},
		},
		Formula: aunit.FactsFormula,
		Expect:  true,
	})
	s.Add(&aunit.Test{
		Name: "selfloop_rejected",
		Valuation: map[string][][]string{
			"Node": {{"N0"}},
			"next": {{"N0", "N0"}},
		},
		Formula: aunit.FactsFormula,
		Expect:  false,
	})
	s.Add(&aunit.Test{
		Name: "empty_accepted",
		Valuation: map[string][][]string{
			"Node": {},
			"next": {},
		},
		Formula: aunit.FactsFormula,
		Expect:  true,
	})
	return s
}

func problem(t *testing.T) repair.Problem {
	return repair.Problem{
		Name:   "noself",
		Faulty: mustParse(t, faultySrc),
		Tests:  testSuite(),
	}
}

func assertEquisatWithGT(t *testing.T, cand *ast.Module) {
	t.Helper()
	a := analyzer.New(analyzer.Options{})
	eq, err := a.Equisat(mustParse(t, groundTruthSrc), cand)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("candidate is not equisatisfiable with ground truth:\n%s", printer.Module(cand))
	}
}

func TestARepairFixesWithTests(t *testing.T) {
	tool := arepair.New(arepair.Options{})
	out, err := tool.Repair(context.Background(), problem(t))
	if err != nil {
		t.Fatal(err)
	}
	if out.Candidate == nil {
		t.Fatal("no candidate produced")
	}
	if !out.Repaired {
		t.Fatalf("ARepair did not satisfy its tests; candidate:\n%s", printer.Module(out.Candidate))
	}
	if out.Stats.TestRuns == 0 || out.Stats.CandidatesTried == 0 {
		t.Errorf("stats not populated: %+v", out.Stats)
	}
}

func TestARepairRequiresTests(t *testing.T) {
	tool := arepair.New(arepair.Options{})
	_, err := tool.Repair(context.Background(), repair.Problem{Name: "x", Faulty: mustParse(t, faultySrc)})
	if err == nil {
		t.Error("ARepair without tests should error")
	}
}

func TestARepairAlreadyPassing(t *testing.T) {
	tool := arepair.New(arepair.Options{})
	p := repair.Problem{
		Name:   "ok",
		Faulty: mustParse(t, groundTruthSrc),
		Tests:  testSuite(),
	}
	// All three tests pass on the ground truth.
	out, err := tool.Repair(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Repaired {
		t.Error("already-passing model should be reported repaired")
	}
}

func TestBeAFixRepairsAgainstPropertyOracle(t *testing.T) {
	tool := beafix.New(beafix.Options{})
	out, err := tool.Repair(context.Background(), repair.Problem{Name: "noself", Faulty: mustParse(t, faultySrc)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Repaired {
		t.Fatalf("BeAFix failed; tried %d candidates", out.Stats.CandidatesTried)
	}
	assertEquisatWithGT(t, out.Candidate)
}

func TestBeAFixWithoutPruning(t *testing.T) {
	tool := beafix.New(beafix.Options{DisablePruning: true})
	out, err := tool.Repair(context.Background(), repair.Problem{Name: "noself", Faulty: mustParse(t, faultySrc)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Repaired {
		t.Fatal("BeAFix without pruning should still repair (just slower)")
	}
	assertEquisatWithGT(t, out.Candidate)
}

func TestBeAFixPruningReducesWork(t *testing.T) {
	pruned := beafix.New(beafix.Options{})
	unpruned := beafix.New(beafix.Options{DisablePruning: true})
	outP, err := pruned.Repair(context.Background(), repair.Problem{Name: "noself", Faulty: mustParse(t, faultySrc)})
	if err != nil {
		t.Fatal(err)
	}
	outU, err := unpruned.Repair(context.Background(), repair.Problem{Name: "noself", Faulty: mustParse(t, faultySrc)})
	if err != nil {
		t.Fatal(err)
	}
	if outP.Stats.AnalyzerCalls > outU.Stats.AnalyzerCalls {
		t.Errorf("pruning should not increase analyzer calls: pruned=%d unpruned=%d",
			outP.Stats.AnalyzerCalls, outU.Stats.AnalyzerCalls)
	}
}

func TestBeAFixAlreadyCorrect(t *testing.T) {
	tool := beafix.New(beafix.Options{})
	out, err := tool.Repair(context.Background(), repair.Problem{Name: "ok", Faulty: mustParse(t, groundTruthSrc)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Repaired {
		t.Error("correct module should pass the oracle immediately")
	}
}

func TestICEBARRepairsViaIteration(t *testing.T) {
	tool := icebar.New(icebar.Options{})
	out, err := tool.Repair(context.Background(), repair.Problem{Name: "noself", Faulty: mustParse(t, faultySrc)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Repaired {
		candidate := "<nil>"
		if out.Candidate != nil {
			candidate = printer.Module(out.Candidate)
		}
		t.Fatalf("ICEBAR failed after %d iterations; candidate:\n%s", out.Stats.Iterations, candidate)
	}
	assertEquisatWithGT(t, out.Candidate)
}

func TestICEBARUsesProvidedTests(t *testing.T) {
	tool := icebar.New(icebar.Options{})
	out, err := tool.Repair(context.Background(), problem(t))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Repaired {
		t.Fatal("ICEBAR with seed tests should repair")
	}
	assertEquisatWithGT(t, out.Candidate)
}

func TestATRRepairs(t *testing.T) {
	tool := atr.New(atr.Options{})
	out, err := tool.Repair(context.Background(), repair.Problem{Name: "noself", Faulty: mustParse(t, faultySrc)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Repaired {
		t.Fatalf("ATR failed; tried %d candidates", out.Stats.CandidatesTried)
	}
	assertEquisatWithGT(t, out.Candidate)
}

func TestATRAlreadyCorrect(t *testing.T) {
	tool := atr.New(atr.Options{})
	out, err := tool.Repair(context.Background(), repair.Problem{Name: "ok", Faulty: mustParse(t, groundTruthSrc)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Repaired {
		t.Error("correct module should pass immediately")
	}
}

// A second fault class: wrong relation referenced.
const wrongRelSrc = `
sig Person { boss: lone Person, report: set Person }
fact Mirror { all p: Person | p.report = boss.p }
fact Bug { all p: Person | p not in p.report }
assert NoSelfBoss { no p: Person | p in p.boss }
check NoSelfBoss for 3
`

func TestBeAFixWrongRelation(t *testing.T) {
	// The assertion fails because nothing constrains boss; the fix space
	// includes mutating Bug to speak about boss.
	tool := beafix.New(beafix.Options{})
	out, err := tool.Repair(context.Background(), repair.Problem{Name: "wrongrel", Faulty: mustParse(t, wrongRelSrc)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Repaired {
		t.Fatalf("BeAFix should find a relation substitution; tried %d", out.Stats.CandidatesTried)
	}
	// The repaired module must make the check pass.
	a := analyzer.New(analyzer.Options{})
	ok, err := repair.OracleAllCommandsPass(context.Background(), a, out.Candidate)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("oracle fails on claimed repair:\n%s", printer.Module(out.Candidate))
	}
}

func TestOutcomesDeterministic(t *testing.T) {
	for _, mk := range []func() repair.Technique{
		func() repair.Technique { return beafix.New(beafix.Options{}) },
		func() repair.Technique { return atr.New(atr.Options{}) },
	} {
		t1, t2 := mk(), mk()
		o1, err1 := t1.Repair(context.Background(), repair.Problem{Name: "d", Faulty: mustParse(t, faultySrc)})
		o2, err2 := t2.Repair(context.Background(), repair.Problem{Name: "d", Faulty: mustParse(t, faultySrc)})
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if o1.Repaired != o2.Repaired {
			t.Fatalf("%s nondeterministic repair verdict", t1.Name())
		}
		if o1.Candidate != nil && o2.Candidate != nil &&
			printer.Module(o1.Candidate) != printer.Module(o2.Candidate) {
			t.Errorf("%s produced different candidates across runs", t1.Name())
		}
	}
}

func TestOracleAllCommandsPass(t *testing.T) {
	a := analyzer.New(analyzer.Options{})
	ok, err := repair.OracleAllCommandsPass(context.Background(), a, mustParse(t, groundTruthSrc))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("ground truth should pass its own oracle")
	}
	ok, err = repair.OracleAllCommandsPass(context.Background(), a, mustParse(t, faultySrc))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("faulty module should fail its oracle")
	}
}
