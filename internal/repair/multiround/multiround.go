// Package multiround reimplements the Multi-Round LLM repair framework
// (Alhanahnah et al. 2024): a dual-agent loop in which a Repair Agent
// proposes candidate specifications and, between rounds, the Alloy
// Analyzer's verdict is fed back at one of three fidelity levels —
// None (binary "not fixed"), Generic (templated report with
// counterexamples), or Auto (a second Prompt Agent LLM crafts targeted
// guidance from the report and the candidate).
package multiround

import (
	"context"
	"fmt"

	"specrepair/internal/alloy/ast"
	"specrepair/internal/alloy/parser"
	"specrepair/internal/alloy/printer"
	"specrepair/internal/anacache"
	"specrepair/internal/analyzer"
	"specrepair/internal/instance"
	"specrepair/internal/llm"
	"specrepair/internal/repair"
	"specrepair/internal/telemetry"
)

// Options configures the technique.
type Options struct {
	Feedback llm.FeedbackKind
	// Rounds caps repair-agent proposals (the study used a small fixed
	// budget per specification).
	Rounds int
	Client llm.Client
	// Analyzer overrides the default analyzer (mainly for tests).
	Analyzer *analyzer.Analyzer
	// Cache backs the default analyzer when Analyzer is nil, so validation
	// of near-identical intermediate specs is shared across rounds and
	// techniques.
	Cache *anacache.Cache
	// Telemetry records live round counts. Nil disables instrumentation.
	Telemetry *telemetry.Collector
}

// DefaultRounds is the per-spec proposal budget.
const DefaultRounds = 12

// Tool is the Multi-Round technique under one feedback setting.
type Tool struct {
	opts   Options
	an     *analyzer.Analyzer
	rounds *telemetry.Counter
}

// New returns the technique. A Client is required.
func New(opts Options) *Tool {
	if opts.Rounds == 0 {
		opts.Rounds = DefaultRounds
	}
	if opts.Feedback == 0 {
		opts.Feedback = llm.FeedbackNone
	}
	an := opts.Analyzer
	if an == nil {
		an = analyzer.New(analyzer.Options{Cache: opts.Cache, Telemetry: opts.Telemetry})
	}
	t := &Tool{opts: opts, an: an}
	t.rounds = opts.Telemetry.TechCounter(t.Name(), "rounds")
	return t
}

var _ repair.Technique = (*Tool)(nil)

// Name implements repair.Technique.
func (t *Tool) Name() string { return "Multi-Round_" + t.opts.Feedback.String() }

// Repair implements repair.Technique.
func (t *Tool) Repair(ctx context.Context, p repair.Problem) (repair.Outcome, error) {
	out := repair.Outcome{}
	if t.opts.Client == nil {
		return out, fmt.Errorf("multi-round: no LLM client configured")
	}

	an := t.an.WithContext(ctx)

	msgs := []llm.Message{
		{Role: llm.RoleSystem, Content: llm.RepairSystemPrompt},
		{Role: llm.RoleUser, Content: llm.BuildRepairPrompt(printer.Module(p.Faulty), llm.PromptOptions{})},
	}

	// One span per proposal round; the deferred End closes whichever span an
	// early return leaves open (End is idempotent).
	parent := telemetry.SpanFromContext(ctx)
	var roundSpan *telemetry.Span
	defer func() { roundSpan.End() }()

	var best *ast.Module
	for round := 0; round < t.opts.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		out.Stats.Iterations++
		t.rounds.Inc()
		roundSpan.End()
		roundSpan = parent.Child("multiround.round")
		roundSpan.SetMetric("round", int64(round+1))
		llmSpan := roundSpan.Child("llm.complete")
		llmSpan.SetAttr("agent", "repair")
		reply, err := t.opts.Client.Complete(msgs)
		llmSpan.SetMetric("reply_bytes", int64(len(reply)))
		llmSpan.End()
		if err != nil {
			return out, fmt.Errorf("multi-round completion: %w", err)
		}
		msgs = append(msgs, llm.Message{Role: llm.RoleAssistant, Content: reply})
		out.Stats.CandidatesTried++

		cand := t.parseCandidate(reply)
		var feedback string
		if cand == nil {
			feedback = llm.BuildNoFeedback()
		} else {
			best = cand
			failed, cex, pass, err := t.validate(an.WithSpan(roundSpan), cand)
			out.Stats.AnalyzerCalls++
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return out, cerr
				}
			}
			if err == nil && pass {
				out.Repaired = true
				out.Candidate = cand
				return out, nil
			}
			feedback, err = t.buildFeedback(roundSpan, cand, failed, cex)
			if err != nil {
				feedback = llm.BuildNoFeedback()
			}
		}
		msgs = append(msgs, llm.Message{Role: llm.RoleUser, Content: feedback})
	}
	out.Candidate = best
	return out, nil
}

func (t *Tool) parseCandidate(reply string) *ast.Module {
	src, ok := llm.ExtractSpec(reply)
	if !ok {
		return nil
	}
	cand, err := parser.Parse(src)
	if err != nil {
		return nil
	}
	return cand
}

// validate runs all commands, returning the failing command names and the
// first counterexample (or unexpected instance witness).
func (t *Tool) validate(an *analyzer.Analyzer, cand *ast.Module) (failed []string, cex *instance.Instance, pass bool, err error) {
	results, err := an.ExecuteAll(cand)
	if err != nil {
		return nil, nil, false, err
	}
	pass = true
	for _, r := range results {
		if r.Passed() {
			continue
		}
		pass = false
		failed = append(failed, r.Command.Name)
		if cex == nil && r.Sat && r.Instance != nil {
			cex = r.Instance
		}
	}
	return failed, cex, pass, nil
}

// buildFeedback renders the between-round message per the feedback level.
// The span parents the Prompt Agent's completion in the Auto setting.
func (t *Tool) buildFeedback(sp *telemetry.Span, cand *ast.Module, failed []string, cex *instance.Instance) (string, error) {
	switch t.opts.Feedback {
	case llm.FeedbackNone:
		return llm.BuildNoFeedback(), nil
	case llm.FeedbackGeneric:
		return llm.BuildGenericFeedback(failed, cex), nil
	case llm.FeedbackAuto:
		req := []llm.Message{
			{Role: llm.RoleSystem, Content: llm.PromptAgentSystemPrompt},
			{Role: llm.RoleUser, Content: llm.BuildPromptAgentRequest(printer.Module(cand), failed, cex)},
		}
		llmSpan := sp.Child("llm.complete")
		llmSpan.SetAttr("agent", "prompt")
		guidance, err := t.opts.Client.Complete(req)
		llmSpan.SetMetric("reply_bytes", int64(len(guidance)))
		llmSpan.End()
		if err != nil {
			return "", err
		}
		return llm.BuildAutoFeedback(guidance, failed, cex), nil
	default:
		return llm.BuildNoFeedback(), nil
	}
}
