// Package repair defines the common contract implemented by every repair
// technique in the study — the four traditional tools (ARepair, ICEBAR,
// BeAFix, ATR) and the LLM-based ones (Single-Round, Multi-Round).
package repair

import (
	"context"

	"specrepair/internal/alloy/ast"
	"specrepair/internal/analyzer"
	"specrepair/internal/aunit"
)

// Problem is one faulty specification to repair.
type Problem struct {
	// Name identifies the benchmark entry (e.g. "classroom/inv3_42").
	Name string
	// Faulty is the defective module. Tools must not modify it.
	Faulty *ast.Module
	// Tests is the AUnit suite accompanying the problem (used by the
	// test-based tools; may be nil for property-oracle-only problems).
	Tests *aunit.Suite
	// Hints carries the metadata the LLM prompt settings draw on. Zero
	// values mean the hint is unavailable.
	Hints Hints
}

// Hints mirrors the informational cues of the Single-Round prompt study:
// bug location, a fix description, and the oracle assertion to pass.
type Hints struct {
	// Location describes where the bug is (paragraph kind and name).
	Location string `json:"location,omitempty"`
	// FixDescription sketches the intended fix in prose.
	FixDescription string `json:"fixDescription,omitempty"`
	// PassAssertion names the assertion the fix must satisfy.
	PassAssertion string `json:"passAssertion,omitempty"`
}

// Stats aggregates the effort a technique spent.
type Stats struct {
	CandidatesTried int
	AnalyzerCalls   int
	TestRuns        int
	Iterations      int
}

// Add accumulates o into s, summing field-wise. The study runner uses it to
// aggregate per-job stats into per-technique totals.
func (s *Stats) Add(o Stats) {
	s.CandidatesTried += o.CandidatesTried
	s.AnalyzerCalls += o.AnalyzerCalls
	s.TestRuns += o.TestRuns
	s.Iterations += o.Iterations
}

// Outcome is a technique's result on one problem.
type Outcome struct {
	// Repaired reports success per the technique's own oracle (tests for
	// ARepair, property commands for the others). The study's REP metric
	// re-validates candidates against the ground truth independently.
	Repaired bool
	// Candidate is the best module produced (nil when the technique gave
	// up without producing anything).
	Candidate *ast.Module
	Stats     Stats
}

// Technique is a repair tool.
type Technique interface {
	// Name returns the technique's display name as used in the paper's
	// tables (e.g. "ARepair", "Multi-Round_Generic").
	Name() string
	// Repair attempts to fix the problem. When ctx is cancelled the
	// technique abandons the search and returns the context's error;
	// partial progress is discarded, never reported as a repair.
	Repair(ctx context.Context, p Problem) (Outcome, error)
}

// OracleAllCommandsPass reports whether every command of the module meets
// its expectation — the property-based repair oracle shared by ICEBAR,
// BeAFix, and ATR. It stops at the first failing command.
//
// Candidate-enumeration loops should not call this per candidate: they use
// analyzer.Evaluator, which answers the same question over one long-lived
// incremental SAT session shared by the whole candidate stream. ARepair has
// no analyzer oracle at all — its oracle is the AUnit test suite — and
// participates in incremental evaluation only through ICEBAR's wrapper.
func OracleAllCommandsPass(ctx context.Context, a *analyzer.Analyzer, mod *ast.Module) (bool, error) {
	return a.WithContext(ctx).PassesAll(mod)
}
