// Package arepair reimplements the ARepair technique (Wang, Sullivan,
// Khurshid — ASE'18): test-driven greedy repair of Alloy models. Given a
// faulty model and an AUnit test suite, it localizes suspicious constraints
// from failing-test valuations, mutates them, and greedily keeps any mutant
// that passes strictly more tests, until the whole suite passes or the
// search budget runs out.
//
// Faithful to the original, the only oracle is the user-provided test
// suite — which is why ARepair overfits: a "repair" that satisfies every
// test may still diverge from the intended specification.
package arepair

import (
	"context"
	"fmt"

	"specrepair/internal/alloy/ast"
	"specrepair/internal/alloy/types"
	"specrepair/internal/aunit"
	"specrepair/internal/faultloc"
	"specrepair/internal/mutation"
	"specrepair/internal/repair"
	"specrepair/internal/telemetry"
)

// Options bounds the greedy search.
type Options struct {
	// MaxIterations caps greedy improvement rounds.
	MaxIterations int
	// MaxSites caps how many top-ranked suspicious sites are mutated per
	// round.
	MaxSites int
	// Budget selects mutation aggressiveness.
	Budget mutation.Budget
	// Telemetry records live test-run counts. Nil disables instrumentation.
	Telemetry *telemetry.Collector
}

// DefaultOptions mirror the search depth ARepair uses in the study.
func DefaultOptions() Options {
	return Options{MaxIterations: 3, MaxSites: 4, Budget: mutation.BudgetRelations}
}

// Tool is the ARepair technique.
type Tool struct {
	opts     Options
	testRuns *telemetry.Counter
}

// New returns the technique with the given options.
func New(opts Options) *Tool {
	if opts.MaxIterations == 0 {
		tel := opts.Telemetry
		opts = DefaultOptions()
		opts.Telemetry = tel
	}
	return &Tool{opts: opts, testRuns: opts.Telemetry.TechCounter("ARepair", "test_runs")}
}

var _ repair.Technique = (*Tool)(nil)

// Name implements repair.Technique.
func (t *Tool) Name() string { return "ARepair" }

// Repair implements repair.Technique.
func (t *Tool) Repair(ctx context.Context, p repair.Problem) (repair.Outcome, error) {
	if p.Tests == nil || p.Tests.Len() == 0 {
		return repair.Outcome{}, fmt.Errorf("ARepair requires an AUnit test suite for %q", p.Name)
	}
	out := repair.Outcome{}
	current := p.Faulty.Clone()

	_, passed := p.Tests.RunAll(current)
	out.Stats.TestRuns++
	t.testRuns.Inc()
	best := passed
	if best == p.Tests.Len() {
		out.Repaired = true
		out.Candidate = current
		return out, nil
	}

	for iter := 0; iter < t.opts.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		out.Stats.Iterations++
		iterCtx, iterSpan := telemetry.StartChild(ctx, "arepair.iteration")
		improved, cand, tried, err := t.improveOnce(iterCtx, current, p.Tests, best)
		iterSpan.SetMetric("candidates", int64(tried))
		iterSpan.End()
		out.Stats.CandidatesTried += tried
		out.Stats.TestRuns += tried
		t.testRuns.Add(int64(tried))
		if err != nil {
			return out, err
		}
		if !improved {
			break
		}
		current = cand
		_, best = p.Tests.RunAll(current)
		out.Stats.TestRuns++
		t.testRuns.Inc()
		if best == p.Tests.Len() {
			out.Repaired = true
			break
		}
	}
	out.Candidate = current
	return out, nil
}

// improveOnce scans suspicious sites for a single mutation that strictly
// increases the number of passing tests (greedy hill climbing).
func (t *Tool) improveOnce(ctx context.Context, mod *ast.Module, suite *aunit.Suite, best int) (bool, *ast.Module, int, error) {
	ranked, err := t.localize(mod, suite)
	if err != nil {
		return false, nil, 0, err
	}
	eng, err := mutation.NewEngine(mod)
	if err != nil {
		return false, nil, 0, err
	}
	tried := 0

	consider := func(cand *ast.Module) (bool, *ast.Module) {
		tried++
		if _, err := types.Check(cand.Clone()); err != nil {
			return false, nil
		}
		_, passed := suite.RunAll(cand)
		if passed > best {
			return true, cand
		}
		return false, nil
	}

	sites := 0
	for _, r := range ranked {
		if r.Score == 0 || sites >= t.opts.MaxSites {
			break
		}
		if err := ctx.Err(); err != nil {
			return false, nil, tried, err
		}
		sites++
		// Mutate every node within the suspicious conjunct.
		for _, s := range eng.Sites() {
			if !within(r.Site.Site, s.Site) {
				continue
			}
			if err := ctx.Err(); err != nil {
				return false, nil, tried, err
			}
			for _, c := range eng.Candidates(s, t.opts.Budget) {
				cand, err := eng.Apply(s.Site, c)
				if err != nil {
					continue
				}
				if ok, m := consider(cand); ok {
					return true, m, tried, nil
				}
			}
		}
		// Also try dropping a conjunct of the enclosing block.
		parent := r.Site.Site
		if len(parent.Path) > 0 {
			blockSite := mutation.Site{Container: parent.Container, Path: parent.Path[:len(parent.Path)-1]}
			drops, err := mutation.DropConjunct(eng.Mod, blockSite)
			if err == nil {
				for _, cand := range drops {
					if ok, m := consider(cand); ok {
						return true, m, tried, nil
					}
				}
			}
		}
	}
	return false, nil, tried, nil
}

// within reports whether inner is the same site as outer or beneath it.
func within(outer, inner mutation.Site) bool {
	if outer.Container != inner.Container {
		return false
	}
	if len(inner.Path) < len(outer.Path) {
		return false
	}
	for i := range outer.Path {
		if inner.Path[i] != outer.Path[i] {
			return false
		}
	}
	return true
}

// localize derives labeled observations from the suite and ranks the
// module's constraint sites. A test's expectation is the intent label: the
// valuation of an expect-true test should be accepted by the intended
// specification, an expect-false one rejected.
func (t *Tool) localize(mod *ast.Module, suite *aunit.Suite) ([]faultloc.RankedSite, error) {
	_, info, err := types.Lower(mod)
	if err != nil {
		return nil, err
	}
	var failing, passing []faultloc.Observation
	results, _ := suite.RunAll(mod)
	for _, r := range results {
		inst, err := r.Test.Instance(info)
		if err != nil {
			continue
		}
		obs := faultloc.Observation{Inst: inst, WantSatisfied: r.Test.Expect}
		if r.Passed {
			passing = append(passing, obs)
		} else {
			failing = append(failing, obs)
		}
	}
	return faultloc.Localize(mod, failing, passing)
}
