// Package singleround reimplements the Single-Round LLM repair study
// (Hasan et al. 2023): one zero-shot prompt carrying the faulty
// specification plus an optional combination of informational cues —
// bug location (Loc), fix description (Fix), and required assertion
// (Pass) — answered by one completion, parsed, and validated.
package singleround

import (
	"context"
	"fmt"

	"specrepair/internal/alloy/parser"
	"specrepair/internal/alloy/printer"
	"specrepair/internal/analyzer"
	"specrepair/internal/llm"
	"specrepair/internal/repair"
	"specrepair/internal/telemetry"
)

// Setting is one of the five prompt configurations of the study.
type Setting int

// Prompt settings, as labeled in the paper's tables.
const (
	SettingLocFix Setting = iota + 1
	SettingLoc
	SettingPass
	SettingNone
	SettingLocPass
)

// Settings lists all configurations in table order.
var Settings = []Setting{SettingLocFix, SettingLoc, SettingPass, SettingNone, SettingLocPass}

// String renders the setting's paper label.
func (s Setting) String() string {
	switch s {
	case SettingLocFix:
		return "Loc+Fix"
	case SettingLoc:
		return "Loc"
	case SettingPass:
		return "Pass"
	case SettingNone:
		return "None"
	case SettingLocPass:
		return "Loc+Pass"
	default:
		return "?"
	}
}

// Options configures the technique.
type Options struct {
	Setting Setting
	Client  llm.Client
	// Analyzer overrides the default analyzer (mainly for tests).
	Analyzer *analyzer.Analyzer
	// Telemetry records live candidate counts. Nil disables instrumentation.
	Telemetry *telemetry.Collector
}

// Tool is the Single-Round technique under one prompt setting.
type Tool struct {
	opts       Options
	an         *analyzer.Analyzer
	candidates *telemetry.Counter
}

// New returns the technique. A Client is required.
func New(opts Options) *Tool {
	an := opts.Analyzer
	if an == nil {
		an = analyzer.New(analyzer.Options{Telemetry: opts.Telemetry})
	}
	t := &Tool{opts: opts, an: an}
	t.candidates = opts.Telemetry.TechCounter(t.Name(), "candidates")
	return t
}

var _ repair.Technique = (*Tool)(nil)

// Name implements repair.Technique.
func (t *Tool) Name() string { return "Single-Round_" + t.opts.Setting.String() }

// Repair implements repair.Technique.
func (t *Tool) Repair(ctx context.Context, p repair.Problem) (repair.Outcome, error) {
	out := repair.Outcome{}
	if t.opts.Client == nil {
		return out, fmt.Errorf("single-round: no LLM client configured")
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}

	var promptOpts llm.PromptOptions
	switch t.opts.Setting {
	case SettingLocFix:
		promptOpts.Location = p.Hints.Location
		promptOpts.FixDescription = p.Hints.FixDescription
	case SettingLoc:
		promptOpts.Location = p.Hints.Location
	case SettingPass:
		promptOpts.PassAssertion = p.Hints.PassAssertion
	case SettingLocPass:
		promptOpts.Location = p.Hints.Location
		promptOpts.PassAssertion = p.Hints.PassAssertion
	}

	// One round: a single completion followed by one oracle validation.
	roundCtx, roundSpan := telemetry.StartChild(ctx, "singleround.round")
	roundSpan.SetAttr("setting", t.opts.Setting.String())
	defer roundSpan.End()

	msgs := []llm.Message{
		{Role: llm.RoleSystem, Content: llm.RepairSystemPrompt},
		{Role: llm.RoleUser, Content: llm.BuildRepairPrompt(printer.Module(p.Faulty), promptOpts)},
	}
	llmSpan := roundSpan.Child("llm.complete")
	reply, err := t.opts.Client.Complete(msgs)
	llmSpan.SetMetric("reply_bytes", int64(len(reply)))
	llmSpan.End()
	if err != nil {
		return out, fmt.Errorf("single-round completion: %w", err)
	}
	out.Stats.Iterations = 1
	out.Stats.CandidatesTried = 1
	t.candidates.Inc()

	src, ok := llm.ExtractSpec(reply)
	if !ok {
		return out, nil // unusable reply: no repair
	}
	cand, err := parser.Parse(src)
	if err != nil {
		return out, nil // non-parsing candidate: no repair
	}
	out.Candidate = cand

	pass, err := repair.OracleAllCommandsPass(roundCtx, t.an, cand)
	out.Stats.AnalyzerCalls++
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return out, cerr
		}
		return out, nil
	}
	out.Repaired = pass
	return out, nil
}
