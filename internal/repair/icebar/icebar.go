// Package icebar reimplements the ICEBAR technique (Brida et al. — ASE'22):
// iterative, counterexample-driven repair. Each round runs ARepair on the
// current test suite; the candidate is then validated against the model's
// property oracle (its check commands). If a counterexample remains, it is
// converted into new AUnit tests that reject it (and passing witnesses into
// tests that must keep holding), and the loop continues with the enlarged
// suite — systematically fighting ARepair's overfitting.
package icebar

import (
	"context"
	"fmt"

	"specrepair/internal/alloy/ast"
	"specrepair/internal/anacache"
	"specrepair/internal/analyzer"
	"specrepair/internal/aunit"
	"specrepair/internal/repair"
	"specrepair/internal/repair/arepair"
	"specrepair/internal/telemetry"
)

// Options bounds the refinement loop.
type Options struct {
	// MaxIterations caps ARepair rounds.
	MaxIterations int
	// ARepair configures the inner tool.
	ARepair arepair.Options
	// Analyzer overrides the default analyzer (mainly for tests).
	Analyzer *analyzer.Analyzer
	// Cache backs the default analyzer when Analyzer is nil, so oracle
	// re-checks of intermediate candidates are shared across techniques.
	Cache *anacache.Cache
	// Telemetry records the refinement loop's live iteration count and is
	// propagated to the inner ARepair. Nil disables instrumentation.
	Telemetry *telemetry.Collector
}

// DefaultOptions mirror the study's configuration.
func DefaultOptions() Options {
	inner := arepair.DefaultOptions()
	// The wrapped ARepair gets a deeper budget than standalone ARepair:
	// ICEBAR's oracle checks keep it honest, so extra search pays off.
	inner.MaxIterations = 6
	inner.MaxSites = 6
	return Options{MaxIterations: 6, ARepair: inner}
}

// Tool is the ICEBAR technique.
type Tool struct {
	opts       Options
	an         *analyzer.Analyzer
	inner      *arepair.Tool
	iterations *telemetry.Counter
}

// New returns the technique with the given options.
func New(opts Options) *Tool {
	if opts.MaxIterations == 0 {
		d := DefaultOptions()
		d.Analyzer = opts.Analyzer
		d.Cache = opts.Cache
		d.Telemetry = opts.Telemetry
		opts = d
	}
	an := opts.Analyzer
	if an == nil {
		an = analyzer.New(analyzer.Options{Cache: opts.Cache, Telemetry: opts.Telemetry})
	}
	if opts.ARepair.Telemetry == nil {
		opts.ARepair.Telemetry = opts.Telemetry
	}
	return &Tool{
		opts:       opts,
		an:         an,
		inner:      arepair.New(opts.ARepair),
		iterations: opts.Telemetry.TechCounter("ICEBAR", "iterations"),
	}
}

var _ repair.Technique = (*Tool)(nil)

// Name implements repair.Technique.
func (t *Tool) Name() string { return "ICEBAR" }

// Repair implements repair.Technique.
func (t *Tool) Repair(ctx context.Context, p repair.Problem) (repair.Outcome, error) {
	out := repair.Outcome{}

	// One context-bound analyzer serves the whole call: oracle checks, suite
	// refinement, and the incremental evaluator all abort when ctx expires.
	an := t.an.WithContext(ctx)

	suite := &aunit.Suite{}
	if p.Tests != nil {
		suite = p.Tests.Clone()
	}

	// Seed the suite from the oracle before the first ARepair run, so the
	// inner tool has signal even when no tests were provided.
	if added, err := t.refineSuite(an, p.Faulty, suite, 0); err != nil {
		return out, err
	} else if !added && suite.Len() == 0 {
		// Oracle already satisfied and no tests: nothing to repair.
		ok, err := repair.OracleAllCommandsPass(ctx, t.an, p.Faulty)
		out.Stats.AnalyzerCalls++
		if err != nil {
			return out, err
		}
		if ok {
			out.Repaired = true
			out.Candidate = p.Faulty.Clone()
			return out, nil
		}
	}

	if suite.Len() == 0 {
		// No tests and no way to derive any: ICEBAR cannot drive ARepair.
		out.Candidate = p.Faulty.Clone()
		return out, nil
	}

	// One incremental evaluation session validates every iteration's ARepair
	// candidate: candidates differ from the faulty spec only in repaired
	// formula paragraphs, so translation and learned clauses carry over.
	// Suite refinement (refineSuite) stays on the fresh path — it needs the
	// concrete instances the fresh analyzer would produce.
	oracle := an.Evaluator(p.Faulty)

	current := p.Faulty
	for iter := 0; iter < t.opts.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		out.Stats.Iterations++
		t.iterations.Inc()
		// The iteration span nests the inner ARepair run (via iterCtx), the
		// oracle validation, and the suite refinement under one node.
		iterCtx, iterSpan := telemetry.StartChild(ctx, "icebar.iteration")
		oracle.SetSpan(iterSpan)
		iterAn := an.WithSpan(iterSpan)
		innerOut, err := t.inner.Repair(iterCtx, repair.Problem{
			Name:   p.Name,
			Faulty: current,
			Tests:  suite,
		})
		out.Stats.CandidatesTried += innerOut.Stats.CandidatesTried
		out.Stats.TestRuns += innerOut.Stats.TestRuns
		if err != nil {
			iterSpan.End()
			return out, err
		}
		cand := innerOut.Candidate
		if cand == nil {
			cand = current.Clone()
		}

		// Validate against the property oracle.
		pass, err := oracle.PassesAll(cand)
		out.Stats.AnalyzerCalls++
		if err != nil {
			iterSpan.End()
			return out, err
		}
		if pass {
			iterSpan.End()
			out.Repaired = true
			out.Candidate = cand
			return out, nil
		}

		// Overfit: harvest counterexamples of the candidate into tests.
		added, err := t.refineSuite(iterAn, cand, suite, iter+1)
		iterSpan.End()
		if err != nil {
			return out, err
		}
		if !added {
			// No new counterexamples to learn from; give up with the best
			// candidate so far.
			out.Candidate = cand
			return out, nil
		}
		current = cand
	}
	out.Candidate = current.Clone()
	return out, nil
}

// refineSuite runs the module's check commands and converts counterexamples
// into "this instance must be rejected" tests, plus passing witnesses into
// "this instance must stay accepted" tests. It reports whether any test was
// added.
func (t *Tool) refineSuite(an *analyzer.Analyzer, mod *ast.Module, suite *aunit.Suite, round int) (bool, error) {
	results, err := an.ExecuteAll(mod)
	if err != nil {
		return false, err
	}
	added := false
	for i, res := range results {
		cmd := mod.Commands[i]
		if cmd.Kind != ast.CmdCheck || !res.Sat || res.Instance == nil {
			continue
		}
		// The counterexample satisfies the facts but violates the
		// assertion: a correct spec must exclude it.
		test := aunit.FromInstance(
			fmt.Sprintf("icebar_cex_%s_r%d", cmd.Name, round),
			res.Instance, aunit.FactsFormula, false)
		if !suiteHas(suite, test) {
			suite.Add(test)
			added = true
		}
		// Witness: an instance satisfying facts and assertion must stay
		// accepted.
		if as := mod.LookupAssert(cmd.Target); as != nil {
			witness := mod.Clone()
			witness.Commands = []*ast.Command{{
				Kind:   ast.CmdRun,
				Name:   "witness",
				Block:  as.Body.CloneExpr(),
				Scope:  cmd.Scope.Clone(),
				Expect: -1,
			}}
			wres, werr := an.ExecuteAll(witness)
			if werr == nil && len(wres) == 1 && wres[0].Sat {
				test := aunit.FromInstance(
					fmt.Sprintf("icebar_wit_%s_r%d", cmd.Name, round),
					wres[0].Instance, aunit.FactsFormula, true)
				if !suiteHas(suite, test) {
					suite.Add(test)
					added = true
				}
			}
		}
	}
	return added, nil
}
