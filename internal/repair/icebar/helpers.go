package icebar

import (
	"specrepair/internal/aunit"
)

// suiteHas reports whether an equivalent test (same formula, expectation,
// and valuation) is already present, keyed structurally.
func suiteHas(suite *aunit.Suite, t *aunit.Test) bool {
	for _, existing := range suite.Tests {
		if existing.Formula != t.Formula || existing.Expect != t.Expect {
			continue
		}
		if valuationEqual(existing.Valuation, t.Valuation) {
			return true
		}
	}
	return false
}

func valuationEqual(a, b map[string][][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		seen := map[string]bool{}
		for _, tu := range av {
			seen[key(tu)] = true
		}
		for _, tu := range bv {
			if !seen[key(tu)] {
				return false
			}
		}
	}
	return true
}

func key(tu []string) string {
	out := ""
	for _, a := range tu {
		out += a + ","
	}
	return out
}
