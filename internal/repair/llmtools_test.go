package repair_test

import (
	"context"
	"strings"
	"testing"

	"specrepair/internal/llm"
	"specrepair/internal/repair"
	"specrepair/internal/repair/multiround"
	"specrepair/internal/repair/singleround"
)

func llmProblem(t *testing.T) repair.Problem {
	return repair.Problem{
		Name:   "noself",
		Faulty: mustParse(t, faultySrc),
		Hints: repair.Hints{
			Location:       "fact Links",
			FixDescription: "replace `n in n.next` with `n not in n.next`",
			PassAssertion:  "NoSelf",
		},
	}
}

func TestSingleRoundWithLocFixHints(t *testing.T) {
	model := llm.NewSimulatedModel(101)
	model.GarbageNoise = 0
	model.WildNoise = 0
	tool := singleround.New(singleround.Options{Setting: singleround.SettingLocFix, Client: model})
	out, err := tool.Repair(context.Background(), llmProblem(t))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Repaired {
		t.Error("with explicit Loc+Fix hints the single-round repair should land")
	}
	if out.Repaired {
		assertEquisatWithGT(t, out.Candidate)
	}
}

func TestSingleRoundSettingsNames(t *testing.T) {
	wants := []string{"Single-Round_Loc+Fix", "Single-Round_Loc", "Single-Round_Pass",
		"Single-Round_None", "Single-Round_Loc+Pass"}
	for i, s := range singleround.Settings {
		tool := singleround.New(singleround.Options{Setting: s, Client: llm.NewSimulatedModel(1)})
		if tool.Name() != wants[i] {
			t.Errorf("name = %q, want %q", tool.Name(), wants[i])
		}
	}
}

func TestSingleRoundRequiresClient(t *testing.T) {
	tool := singleround.New(singleround.Options{Setting: singleround.SettingNone})
	if _, err := tool.Repair(context.Background(), llmProblem(t)); err == nil {
		t.Error("expected error without a client")
	}
}

func TestMultiRoundRepairs(t *testing.T) {
	for _, fb := range []llm.FeedbackKind{llm.FeedbackNone, llm.FeedbackGeneric, llm.FeedbackAuto} {
		model := llm.NewSimulatedModel(202)
		model.GarbageNoise = 0
		tool := multiround.New(multiround.Options{Feedback: fb, Client: model, Rounds: 6})
		out, err := tool.Repair(context.Background(), llmProblem(t))
		if err != nil {
			t.Fatalf("%s: %v", tool.Name(), err)
		}
		if !out.Repaired {
			t.Errorf("%s failed after %d rounds", tool.Name(), out.Stats.Iterations)
			continue
		}
		assertEquisatWithGT(t, out.Candidate)
	}
}

func TestMultiRoundNames(t *testing.T) {
	for fb, want := range map[llm.FeedbackKind]string{
		llm.FeedbackNone:    "Multi-Round_None",
		llm.FeedbackGeneric: "Multi-Round_Generic",
		llm.FeedbackAuto:    "Multi-Round_Auto",
	} {
		tool := multiround.New(multiround.Options{Feedback: fb, Client: llm.NewSimulatedModel(1)})
		if got := tool.Name(); got != want {
			t.Errorf("name = %q, want %q", got, want)
		}
	}
}

func TestMultiRoundIterationBudget(t *testing.T) {
	// A garbage-only model: every round fails to produce a spec; the tool
	// must stop at the round budget.
	tool := multiround.New(multiround.Options{
		Feedback: llm.FeedbackNone,
		Rounds:   3,
		Client:   garbageClient{},
	})
	out, err := tool.Repair(context.Background(), llmProblem(t))
	if err != nil {
		t.Fatal(err)
	}
	if out.Repaired || out.Stats.Iterations != 3 {
		t.Errorf("out = %+v", out)
	}
}

// garbageClient never produces a usable spec.
type garbageClient struct{}

func (garbageClient) Complete(msgs []llm.Message) (string, error) {
	return "I cannot help with that, but the issue is probably in the constraints.", nil
}

// transcriptClient wraps the simulated model, recording conversations.
type transcriptClient struct {
	inner llm.Client
	calls [][]llm.Message
}

func (c *transcriptClient) Complete(msgs []llm.Message) (string, error) {
	cp := append([]llm.Message(nil), msgs...)
	c.calls = append(c.calls, cp)
	return c.inner.Complete(msgs)
}

func TestMultiRoundAutoInvokesPromptAgent(t *testing.T) {
	model := llm.NewSimulatedModel(303)
	model.GarbageNoise = 0
	model.WildNoise = 1.0 // force bad first picks so feedback rounds happen
	rec := &transcriptClient{inner: model}
	tool := multiround.New(multiround.Options{Feedback: llm.FeedbackAuto, Client: rec, Rounds: 3})
	if _, err := tool.Repair(context.Background(), llmProblem(t)); err != nil {
		t.Fatal(err)
	}
	sawPromptAgent := false
	for _, call := range rec.calls {
		if len(call) > 0 && strings.Contains(call[0].Content, "Prompt Agent") {
			sawPromptAgent = true
		}
	}
	if !sawPromptAgent {
		t.Error("Auto feedback must route through the Prompt Agent")
	}
}

func TestMultiRoundGenericFeedbackCarriesCounterexample(t *testing.T) {
	model := llm.NewSimulatedModel(404)
	model.GarbageNoise = 0
	model.WildNoise = 1.0
	rec := &transcriptClient{inner: model}
	tool := multiround.New(multiround.Options{Feedback: llm.FeedbackGeneric, Client: rec, Rounds: 3})
	if _, err := tool.Repair(context.Background(), llmProblem(t)); err != nil {
		t.Fatal(err)
	}
	sawCex := false
	for _, call := range rec.calls {
		for _, m := range call {
			if m.Role == llm.RoleUser && strings.Contains(m.Content, "Counterexample:") {
				sawCex = true
			}
		}
	}
	if !sawCex {
		t.Error("Generic feedback should include counterexamples")
	}
}
