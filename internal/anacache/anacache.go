// Package anacache is a concurrency-safe, sharded, content-addressed cache
// for analysis results. Keys are canonical SHA-256 hashes of the inputs that
// determine a result (printed module text, command text, scope bounds,
// solver options), so two structurally identical queries — produced by
// different repair techniques, different workers, or different rounds of the
// same search loop — address the same entry regardless of who computed it
// first.
//
// The cache is a plain (Key, value) store with per-shard LRU eviction and a
// global entry cap. It holds no domain knowledge: the analyzer defines what
// is stored under a key and guarantees that every stored value is a pure
// function of the key's preimage, which makes cache hits byte-for-byte
// equivalent to recomputation and keeps shared use deterministic under any
// fill order.
package anacache

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

// Key is a content hash addressing one cached analysis result.
type Key [sha256.Size]byte

// KeyOf hashes the given canonical strings into a Key. Parts are
// length-prefixed, so no two distinct part sequences collide by
// concatenation.
func KeyOf(parts ...string) Key {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// DefaultCapacity is the entry cap used when New is given a non-positive
// capacity. Entries are whole-module analysis records, so this comfortably
// covers a full-scale study run's working set.
const DefaultCapacity = 1 << 14

// numShards spreads lock contention; must be a power of two.
const numShards = 32

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// Entries is the number of values currently resident.
	Entries int64
}

// Lookups is the total number of Get calls observed.
func (s Stats) Lookups() int64 { return s.Hits + s.Misses }

// HitRate is Hits/Lookups in [0,1] (0 when no lookups happened).
func (s Stats) HitRate() float64 {
	if l := s.Lookups(); l > 0 {
		return float64(s.Hits) / float64(l)
	}
	return 0
}

// String renders the snapshot for progress lines and summaries.
func (s Stats) String() string {
	return fmt.Sprintf("%d hits / %d misses (%.1f%% hit rate), %d evictions, %d entries",
		s.Hits, s.Misses, 100*s.HitRate(), s.Evictions, s.Entries)
}

// Cache is the sharded LRU store. The zero value is not usable; call New.
type Cache struct {
	perShard int
	shards   [numShards]shard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// entry is an intrusive doubly-linked LRU node.
type entry struct {
	key        Key
	value      any
	prev, next *entry
}

type shard struct {
	mu    sync.Mutex
	byKey map[Key]*entry
	// head is the most recently used entry, tail the eviction candidate.
	head, tail *entry
}

// New returns a cache holding at most capacity entries (DefaultCapacity when
// capacity <= 0). The cap is split evenly across shards, so the effective
// limit is rounded up to a multiple of the shard count.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	per := capacity / numShards
	if per < 1 {
		per = 1
	}
	c := &Cache{perShard: per}
	for i := range c.shards {
		c.shards[i].byKey = map[Key]*entry{}
	}
	return c
}

func (c *Cache) shard(k Key) *shard {
	return &c.shards[int(k[0])&(numShards-1)]
}

// Get returns the value stored under k, marking it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	sh := c.shard(k)
	sh.mu.Lock()
	e, ok := sh.byKey[k]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	sh.moveToFront(e)
	v := e.value
	sh.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put stores v under k (replacing any previous value), evicting the shard's
// least recently used entry when over capacity. Values must never be mutated
// after insertion — every reader receives the same reference.
func (c *Cache) Put(k Key, v any) {
	sh := c.shard(k)
	sh.mu.Lock()
	if e, ok := sh.byKey[k]; ok {
		e.value = v
		sh.moveToFront(e)
		sh.mu.Unlock()
		return
	}
	e := &entry{key: k, value: v}
	sh.byKey[k] = e
	sh.pushFront(e)
	var evicted bool
	if len(sh.byKey) > c.perShard {
		old := sh.tail
		sh.unlink(old)
		delete(sh.byKey, old.key)
		evicted = true
	}
	sh.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
}

// Len is the current number of resident entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.byKey)
		sh.mu.Unlock()
	}
	return n
}

// Stats snapshots the effectiveness counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   int64(c.Len()),
	}
}

func (sh *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *shard) moveToFront(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}
