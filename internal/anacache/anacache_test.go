package anacache

import (
	"fmt"
	"sync"
	"testing"
)

func TestKeyOfDistinguishesPartBoundaries(t *testing.T) {
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Error("length prefixing failed: shifted part boundaries collide")
	}
	if KeyOf("x") != KeyOf("x") {
		t.Error("identical inputs must hash identically")
	}
	if KeyOf("x") == KeyOf("x", "") {
		t.Error("trailing empty part must change the key")
	}
}

func TestGetPutLRU(t *testing.T) {
	c := New(numShards) // one entry per shard
	k1 := KeyOf("one")
	if _, ok := c.Get(k1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k1, 1)
	v, ok := c.Get(k1)
	if !ok || v.(int) != 1 {
		t.Fatalf("Get = %v, %v; want 1, true", v, ok)
	}
	// Overwrite keeps a single entry.
	c.Put(k1, 2)
	if v, _ := c.Get(k1); v.(int) != 2 {
		t.Errorf("overwrite not visible: %v", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestEviction(t *testing.T) {
	c := New(numShards) // capacity 1 per shard
	// Two keys in the same shard: the older must be evicted.
	var a, b Key
	a = KeyOf("a")
	found := false
	for i := 0; i < 10000 && !found; i++ {
		b = KeyOf(fmt.Sprintf("b%d", i))
		found = c.shard(a) == c.shard(b)
	}
	if !found {
		t.Fatal("could not find two keys sharing a shard")
	}
	c.Put(a, "a")
	c.Put(b, "b")
	if _, ok := c.Get(a); ok {
		t.Error("LRU entry survived past capacity")
	}
	if _, ok := c.Get(b); !ok {
		t.Error("most recent entry was evicted")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestStatsCounters(t *testing.T) {
	c := New(0)
	k := KeyOf("k")
	c.Get(k)
	c.Put(k, true)
	c.Get(k)
	c.Get(k)
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Lookups() != 3 {
		t.Errorf("lookups = %d, want 3", st.Lookups())
	}
	if got, want := st.HitRate(), 2.0/3.0; got != want {
		t.Errorf("hit rate = %f, want %f", got, want)
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("zero stats must have zero hit rate")
	}
}

// TestConcurrentHammer drives one cache from many goroutines mixing reads,
// writes, and evictions; run under -race it verifies the locking discipline.
func TestConcurrentHammer(t *testing.T) {
	c := New(256)
	const (
		goroutines = 16
		iters      = 2000
		keySpace   = 512 // larger than capacity, forcing evictions
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := (g*31 + i) % keySpace
				k := KeyOf("key", fmt.Sprint(id))
				if v, ok := c.Get(k); ok {
					if v.(int) != id {
						t.Errorf("key %d returned value %v", id, v)
						return
					}
				} else {
					c.Put(k, id)
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("expected both hits and misses, got %+v", st)
	}
	if st.Evictions == 0 {
		t.Errorf("key space exceeds capacity; expected evictions, got %+v", st)
	}
	if c.Len() > 256+numShards {
		t.Errorf("cache grew past capacity: %d entries", c.Len())
	}
}
