package shard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"specrepair/internal/core"
)

// ErrRejected is returned when the coordinator turns the worker away for a
// study-digest mismatch. It is terminal: retrying cannot help, the worker is
// running a different study than the coordinator.
var ErrRejected = errors.New("worker rejected by coordinator")

// Worker is the client side of the lease protocol. It leases job-ranges
// from the coordinator, runs them through the caller-supplied Run hook, and
// posts each completion back, heartbeating the lease in the background.
type Worker struct {
	// BaseURL locates the coordinator, e.g. "http://127.0.0.1:7070".
	BaseURL string
	// ID names this worker in leases and logs.
	ID string
	// Digest is the worker's locally computed study digest; the coordinator
	// rejects the worker if it differs from its own.
	Digest string
	// Jobs is the worker's locally computed canonical job list. Leases are
	// ranges into this list, so it must match the coordinator's exactly —
	// which the digest check guarantees.
	Jobs []core.JobRef
	// Run evaluates one leased range. It must call emit for every finished
	// job with the job's global index and journal-form record; emit posts
	// the completion to the coordinator synchronously. Run should stop (and
	// may return ctx.Err()) when ctx is cancelled — the lease was revoked or
	// the worker is shutting down.
	Run func(ctx context.Context, start int, refs []core.JobRef, emit func(global int, rec *core.CheckpointRecord) error) error
	// Client defaults to a plain http.Client.
	Client *http.Client
	// Log, when non-nil, receives one-line progress messages.
	Log func(format string, args ...any)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		w.Log(format, args...)
	}
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

// Loop leases and runs job-ranges until the coordinator reports the study
// done, ctx is cancelled, or a terminal error (rejection, unreachable
// coordinator) occurs. It returns nil on a clean "study done" exit.
func (w *Worker) Loop(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lr LeaseResponse
		err := post(ctx, w.client(), w.BaseURL+"/shard/lease",
			LeaseRequest{Worker: w.ID, Digest: w.Digest}, &lr)
		if err != nil {
			return fmt.Errorf("leasing from %s: %w", w.BaseURL, err)
		}
		if lr.Done {
			w.logf("worker %s: study complete, exiting", w.ID)
			return nil
		}
		if lr.Count == 0 {
			// Nothing to lease right now (all ranges are live on other
			// workers and none is stealable) — poll again shortly.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Duration(lr.RetryMs) * time.Millisecond):
			}
			continue
		}
		if lr.Start < 0 || lr.Start+lr.Count > len(w.Jobs) {
			return fmt.Errorf("lease %d grants [%d,%d) outside job space of %d",
				lr.LeaseID, lr.Start, lr.Start+lr.Count, len(w.Jobs))
		}
		studyDone, err := w.runLease(ctx, lr)
		if err != nil {
			return err
		}
		if studyDone {
			// A completion ack told us the study just finished with our
			// record — exit without another lease round, since the
			// coordinator may shut down as soon as it has every record.
			w.logf("worker %s: study complete, exiting", w.ID)
			return nil
		}
	}
}

// runLease evaluates one granted range, heartbeating until it finishes. A
// revoked lease cancels the range's context: in-flight jobs stop, their
// results are discarded, and the loop goes back to leasing. studyDone
// reports that a completion ack flagged the whole study finished.
func (w *Worker) runLease(ctx context.Context, lr LeaseResponse) (studyDone bool, _ error) {
	leaseCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := time.Duration(lr.HeartbeatMs) * time.Millisecond
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-leaseCtx.Done():
				return
			case <-t.C:
				// Heartbeats ride the lease context: a revoked or finished
				// lease cancels any in-flight heartbeat immediately instead
				// of letting it hang through backoff retries.
				var hr HeartbeatResponse
				err := post(leaseCtx, w.client(), w.BaseURL+"/shard/heartbeat",
					HeartbeatRequest{Worker: w.ID, LeaseID: lr.LeaseID}, &hr)
				if err == nil && hr.Revoked {
					w.logf("worker %s: lease %d revoked, abandoning [%d,%d)",
						w.ID, lr.LeaseID, lr.Start, lr.Start+lr.Count)
					cancel()
					return
				}
				// Transport errors are left to the next tick: the lease
				// survives a missed heartbeat or two within the TTL.
			}
		}
	}()

	refs := w.Jobs[lr.Start : lr.Start+lr.Count]
	w.logf("worker %s: lease %d, jobs [%d,%d)", w.ID, lr.LeaseID, lr.Start, lr.Start+lr.Count)
	var done atomic.Bool
	emit := func(global int, rec *core.CheckpointRecord) error {
		if leaseCtx.Err() != nil {
			// Revoked mid-range: the coordinator has re-dispatched these
			// jobs; posting now would be harmless (first-wins) but noisy.
			return leaseCtx.Err()
		}
		var cr CompleteResponse
		err := post(leaseCtx, w.client(), w.BaseURL+"/shard/complete",
			CompleteRequest{Worker: w.ID, LeaseID: lr.LeaseID, Index: global, Record: rec}, &cr)
		if err == nil && cr.Done {
			done.Store(true)
		}
		return err
	}
	err := w.Run(leaseCtx, lr.Start, refs, emit)
	cancel()
	<-hbDone
	if err != nil && !errors.Is(err, context.Canceled) {
		return false, fmt.Errorf("worker %s lease %d: %w", w.ID, lr.LeaseID, err)
	}
	// ctx (not just leaseCtx) cancelled means the worker itself is shutting
	// down — propagate; a revoked lease just loops back to leasing.
	return done.Load(), ctx.Err()
}
