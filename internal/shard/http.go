package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"specrepair/internal/core"
)

// Wire types of the lease protocol. Everything is JSON over three POST
// endpoints plus a status GET; the payloads are small enough that
// readability beats compactness.

// LeaseRequest asks the coordinator for a job-range. Digest must match the
// coordinator's study digest or the request is rejected with HTTP 409.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Digest string `json:"digest"`
	// Max caps the granted range (0 = coordinator's chunk size).
	Max int `json:"max,omitempty"`
}

// LeaseResponse grants a contiguous job-range [Start, Start+Count). A zero
// Count means no work was available: Done tells the worker the study has
// finished; otherwise it should retry after RetryMs.
type LeaseResponse struct {
	LeaseID int64 `json:"lease_id,omitempty"`
	Start   int   `json:"start"`
	Count   int   `json:"count"`
	Done    bool  `json:"done,omitempty"`
	// HeartbeatMs is the interval the worker should heartbeat at (a third
	// of the coordinator's lease TTL).
	HeartbeatMs int64 `json:"heartbeat_ms,omitempty"`
	RetryMs     int64 `json:"retry_ms,omitempty"`
}

// HeartbeatRequest keeps a lease alive while its jobs run.
type HeartbeatRequest struct {
	Worker  string `json:"worker"`
	LeaseID int64  `json:"lease_id"`
}

// HeartbeatResponse reports whether the lease is still held. Revoked means
// the coordinator reaped it (the worker went silent past the TTL and the
// range was re-dispatched); the worker should abandon the range.
type HeartbeatResponse struct {
	OK      bool `json:"ok"`
	Revoked bool `json:"revoked,omitempty"`
}

// CompleteRequest posts one finished job: its global index and the
// journal-form record the coordinator will persist.
type CompleteRequest struct {
	Worker  string                 `json:"worker"`
	LeaseID int64                  `json:"lease_id"`
	Index   int                    `json:"index"`
	Record  *core.CheckpointRecord `json:"record"`
}

// CompleteResponse acknowledges a completion. Duplicate completions are
// acknowledged too — first-wins resolution is the coordinator's concern,
// not the worker's. Done tells the worker the study is now fully complete,
// so it can exit without another lease round (the coordinator may be gone
// by then).
type CompleteResponse struct {
	OK   bool `json:"ok"`
	Done bool `json:"done,omitempty"`
}

// errorBody is the JSON error envelope for non-200 responses.
type errorBody struct {
	Error string `json:"error"`
}

// Coordinator serves the lease protocol for one study run.
type Coordinator struct {
	board  *Board
	digest string
	ln     net.Listener
	srv    *http.Server
}

// Serve starts the coordinator's HTTP server on addr (":0" picks a free
// port; read it back from Addr).
func Serve(addr, digest string, board *Board) (*Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("shard coordinator: %w", err)
	}
	c := &Coordinator{board: board, digest: digest, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/shard/lease", c.handleLease)
	mux.HandleFunc("/shard/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/shard/complete", c.handleComplete)
	mux.HandleFunc("/shard/status", c.handleStatus)
	c.srv = &http.Server{Handler: mux}
	go c.srv.Serve(ln)
	return c, nil
}

// Addr is the address the coordinator is listening on.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close stops the server.
func (c *Coordinator) Close() error { return c.srv.Close() }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return false
	}
	return true
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Digest != c.digest {
		c.board.RejectWorker()
		writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf(
			"study digest mismatch: worker %s has %.12s…, coordinator has %.12s… "+
				"(differing -seed/-scale, binary version, or corpus)",
			req.Worker, req.Digest, c.digest)})
		return
	}
	id, start, count, done := c.board.Lease(req.Worker, req.Max)
	resp := LeaseResponse{LeaseID: id, Start: start, Count: count, Done: done}
	if count > 0 {
		resp.HeartbeatMs = c.board.ttl.Milliseconds() / 3
		if resp.HeartbeatMs < 50 {
			resp.HeartbeatMs = 50
		}
	} else if !done {
		resp.RetryMs = 250
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	ok := c.board.Heartbeat(req.LeaseID)
	writeJSON(w, http.StatusOK, HeartbeatResponse{OK: ok, Revoked: !ok})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Record == nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "completion without record"})
		return
	}
	if err := c.board.Complete(req.LeaseID, req.Index, req.Record); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, CompleteResponse{OK: true, Done: c.board.AllDone()})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.board.Status())
}

// post sends one JSON request with bounded retries, decoding the response
// into out. Only transport errors (the request may never have reached the
// server) back off and retry; both the backoff sleep and the in-flight
// request abort promptly when ctx is cancelled. Everything that arrives as
// an HTTP response is terminal: HTTP-level errors are protocol outcomes,
// not flakiness (a 409 is returned as ErrRejected), and a malformed 200
// body means the server already handled the request — re-POSTing it would
// duplicate side effects (for /complete, a duplicate completion masked
// only by the board's first-wins rule), so decode errors never retry.
func post(ctx context.Context, client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Duration(attempt) * 200 * time.Millisecond):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var eb errorBody
			json.NewDecoder(resp.Body).Decode(&eb)
			if resp.StatusCode == http.StatusConflict {
				return fmt.Errorf("%w: %s", ErrRejected, eb.Error)
			}
			return fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, eb.Error)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("%s: decoding response: %w", url, err)
		}
		return nil
	}
	return lastErr
}
