package shard

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// deadURL returns an address nothing is listening on, so every POST to it
// fails at the transport layer and enters the retry loop.
func deadURL(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return "http://" + addr
}

// A cancelled context must abort the client promptly even when it is parked
// in a retry backoff: the old bare time.Sleep plus context-free Post could
// hang a revoked worker for the better part of a second.
func TestPostCancelledMidBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	var out LeaseResponse
	err := post(ctx, http.DefaultClient, deadURL(t)+"/shard/lease", LeaseRequest{Worker: "w"}, &out)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Full backoff ladder is 200+400+600+800ms; a prompt abort is well
	// under the first two rungs even on a loaded CI box.
	if elapsed > 500*time.Millisecond {
		t.Fatalf("post took %v after cancellation, want a prompt return", elapsed)
	}
}

// A malformed 200 body is a protocol outcome, not transport flakiness: the
// server handled the request, so re-POSTing it would duplicate side effects
// (for /shard/complete, a duplicate completion). Exactly one POST may be
// issued.
func TestPostCorrupt200BodyNotRetried(t *testing.T) {
	var posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte("{\"ok\": tru")) // truncated mid-token
	}))
	defer srv.Close()

	var out CompleteResponse
	err := post(context.Background(), srv.Client(), srv.URL+"/shard/complete", CompleteRequest{Index: 0}, &out)
	if err == nil {
		t.Fatal("corrupt 200 body must surface an error")
	}
	if n := posts.Load(); n != 1 {
		t.Fatalf("corrupt 200 body was POSTed %d times, want exactly 1", n)
	}
}

// Transport errors still retry: a server that refuses the first connection
// but answers the second must be reached transparently. The test proxies
// through a listener that closes its first accepted connection.
func TestPostRetriesTransportErrors(t *testing.T) {
	var posts atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true}`))
	}))
	defer backend.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		first := true
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if first {
				first = false
				conn.Close() // simulate a transient refusal
				continue
			}
			go func() {
				defer conn.Close()
				backendConn, err := net.Dial("tcp", backend.Listener.Addr().String())
				if err != nil {
					return
				}
				defer backendConn.Close()
				go func() { _, _ = io.Copy(backendConn, conn) }()
				_, _ = io.Copy(conn, backendConn)
			}()
		}
	}()

	var out CompleteResponse
	err = post(context.Background(), &http.Client{Timeout: 5 * time.Second},
		"http://"+ln.Addr().String()+"/shard/complete", CompleteRequest{Index: 0}, &out)
	if err != nil {
		t.Fatalf("post through flaky transport: %v", err)
	}
	if !out.OK {
		t.Fatal("decoded response lost the OK flag")
	}
	if n := posts.Load(); n != 1 {
		t.Fatalf("backend saw %d POSTs, want 1", n)
	}
}
