// Package shard splits a study run across worker processes.
//
// The study is embarrassingly parallel over (technique, spec) jobs, and the
// checkpoint journal already makes job completion durable and replayable.
// This package adds the distribution layer on top: a coordinator enumerates
// the full job space in the same deterministic order as a single-process
// run, leases contiguous job-ranges to worker processes over a small
// HTTP/JSON protocol (lease → heartbeat → complete), reaps leases whose
// workers go silent, re-dispatches straggler ranges to idle workers (work
// stealing), and resolves duplicate completions first-wins, so a
// re-dispatched job can never change what was already journaled.
//
// Workers run the same binary (cmd/experiments -worker) and regenerate the
// corpus locally from the deterministic generator; the coordinator rejects
// any worker whose study digest (seed + technique list + printed corpus)
// differs from its own, so a version- or flag-skewed worker cannot smuggle
// mixed-corpus results into the artifacts. Accepted completions flow into
// the coordinator's append-only checkpoint journal and the final artifacts
// are assembled by replaying that journal through the ordinary runner
// resume path — which is what turns the byte-identity-on-resume guarantee
// into byte-identity-across-shardings: a 1-worker run, a 4-worker run, and
// a kill-one-worker-mid-run run all journal the same records and therefore
// render identical CSVs.
package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"specrepair/internal/alloy/printer"
	"specrepair/internal/bench"
	"specrepair/internal/core"
)

// JobList enumerates every (suite, technique, spec) job of a study in the
// canonical order: suites as given, techniques outer, specs inner — the
// same order the single-process runner dispatches. The global index of a
// job in this list is its identity on the wire.
func JobList(suites []*bench.Suite, techniques []string) []core.JobRef {
	var jobs []core.JobRef
	for _, s := range suites {
		for _, t := range techniques {
			for _, sp := range s.Specs {
				jobs = append(jobs, core.JobRef{Suite: s.Name, Technique: t, Spec: sp.Name})
			}
		}
	}
	return jobs
}

// StudyDigest fingerprints everything that determines a study's journaled
// records: the simulated-LLM seed, the technique list, and the full printed
// corpus (faulty and ground-truth modules of every spec, in order). A
// worker whose digest differs — different binary version, different -seed
// or -scale, a diverged generator — must be rejected, because its
// completions would silently mix two different studies into one artifact
// set.
func StudyDigest(seed int64, techniques []string, suites ...*bench.Suite) string {
	h := sha256.New()
	fmt.Fprintf(h, "seed=%d\n", seed)
	for _, t := range techniques {
		fmt.Fprintf(h, "technique=%s\n", t)
	}
	for _, s := range suites {
		fmt.Fprintf(h, "suite=%s specs=%d\n", s.Name, len(s.Specs))
		for _, sp := range s.Specs {
			fmt.Fprintf(h, "spec=%s\n", sp.Name)
			io.WriteString(h, printer.Module(sp.Faulty))
			io.WriteString(h, "\x00")
			io.WriteString(h, printer.Module(sp.GroundTruth))
			io.WriteString(h, "\x00")
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
