package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"specrepair/internal/core"
)

func testJobs(n int) []core.JobRef {
	jobs := make([]core.JobRef, n)
	for i := range jobs {
		jobs[i] = core.JobRef{Suite: "S", Technique: "T", Spec: fmt.Sprintf("%04d", i)}
	}
	return jobs
}

func recordFor(ref core.JobRef, rep int) *core.CheckpointRecord {
	return &core.CheckpointRecord{
		Suite: ref.Suite, Technique: ref.Technique, Spec: ref.Spec,
		Repaired: rep == 1, REP: rep, TM: 0.5, SM: 0.5,
	}
}

// fakeClock is a manually advanced time source for lease-expiry tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBoard(t *testing.T, n int, o BoardOptions) (*Board, *core.Checkpoint) {
	t.Helper()
	if o.Journal == nil {
		o.Journal = core.NewMemoryCheckpoint()
	}
	return NewBoard(testJobs(n), o), o.Journal
}

func TestLeaseGrantsContiguousRanges(t *testing.T) {
	b, _ := newTestBoard(t, 10, BoardOptions{ChunkSize: 4})
	id1, start1, count1, done := b.Lease("w1", 0)
	if done || start1 != 0 || count1 != 4 || id1 == 0 {
		t.Fatalf("first lease = (%d, %d, %d, %v), want (id, 0, 4, false)", id1, start1, count1, done)
	}
	_, start2, count2, _ := b.Lease("w2", 0)
	if start2 != 4 || count2 != 4 {
		t.Fatalf("second lease = [%d,%d), want [4,8)", start2, start2+count2)
	}
	_, start3, count3, _ := b.Lease("w1", 0)
	if start3 != 8 || count3 != 2 {
		t.Fatalf("third lease = [%d,%d), want [8,10)", start3, start3+count3)
	}
}

func TestLeaseExpiryRedispatchesRange(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b, _ := newTestBoard(t, 4, BoardOptions{ChunkSize: 4, TTL: 10 * time.Second, Now: clk.now})

	id1, _, _, _ := b.Lease("w1", 0)
	// Heartbeats keep the lease alive across the TTL boundary.
	clk.advance(8 * time.Second)
	if !b.Heartbeat(id1) {
		t.Fatal("heartbeat on live lease reported revoked")
	}
	clk.advance(8 * time.Second)
	if !b.Heartbeat(id1) {
		t.Fatal("heartbeated lease was reaped inside its extended TTL")
	}
	// Silence past the TTL reaps it: the range goes back to pending and the
	// next lease re-dispatches it as fresh work (not a steal).
	clk.advance(11 * time.Second)
	_, start, count, done := b.Lease("w2", 0)
	if done || start != 0 || count != 4 {
		t.Fatalf("post-expiry lease = [%d,%d) done %v, want [0,4) false", start, start+count, done)
	}
	if b.Heartbeat(id1) {
		t.Fatal("heartbeat on expired lease did not report revoked")
	}
	if st := b.Status(); st.Leases != 1 {
		t.Fatalf("expired lease still live: %+v", st)
	}
}

func TestStealStragglerRemainder(t *testing.T) {
	b, _ := newTestBoard(t, 4, BoardOptions{ChunkSize: 4, TTL: time.Hour})
	jobs := testJobs(4)

	id1, _, _, _ := b.Lease("w1", 0)
	// The straggler finishes jobs 0 and 1; 2 and 3 are still in flight.
	for i := 0; i < 2; i++ {
		if err := b.Complete(id1, i, recordFor(jobs[i], 1)); err != nil {
			t.Fatal(err)
		}
	}
	// An idle worker steals the uncompleted remainder [2,4).
	id2, start, count, done := b.Lease("w2", 0)
	if done || start != 2 || count != 2 {
		t.Fatalf("steal = [%d,%d) done %v, want [2,4) false", start, start+count, done)
	}
	// Duplication is bounded: the victim is marked stolen and the thief's
	// lease is itself never a victim, so a third worker gets nothing.
	if _, _, count, done := b.Lease("w3", 0); count != 0 || done {
		t.Fatalf("second steal of same range = count %d done %v, want 0 false", count, done)
	}
	// Thief completes job 2, straggler completes job 3: both accepted,
	// study done.
	if err := b.Complete(id2, 2, recordFor(jobs[2], 0)); err != nil {
		t.Fatal(err)
	}
	if err := b.Complete(id1, 3, recordFor(jobs[3], 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Done():
	default:
		t.Fatal("board not done after all jobs completed")
	}
	if st := b.Status(); st.Done != 4 || st.Mismatches != 0 {
		t.Fatalf("status = %+v, want 4 done, 0 mismatches", st)
	}
}

func TestDuplicateCompletionFirstWins(t *testing.T) {
	b, journal := newTestBoard(t, 2, BoardOptions{ChunkSize: 2, TTL: time.Hour})
	jobs := testJobs(2)
	id1, _, _, _ := b.Lease("w1", 0)

	first := recordFor(jobs[0], 1)
	if err := b.Complete(id1, 0, first); err != nil {
		t.Fatal(err)
	}
	// Identical duplicate: dropped silently, no mismatch.
	if err := b.Complete(id1, 0, recordFor(jobs[0], 1)); err != nil {
		t.Fatal(err)
	}
	if st := b.Status(); st.Mismatches != 0 {
		t.Fatalf("identical duplicate counted as mismatch: %+v", st)
	}
	// Differing duplicate: still dropped (first wins), but counted as a
	// determinism violation.
	if err := b.Complete(id1, 0, recordFor(jobs[0], 0)); err != nil {
		t.Fatal(err)
	}
	if st := b.Status(); st.Mismatches != 1 {
		t.Fatalf("differing duplicate not counted: %+v", st)
	}
	if got := journal.Lookup("S", "T", "0000"); got == nil || got.REP != 1 {
		t.Fatalf("journal record = %+v, want the first-posted record (REP 1)", got)
	}
}

func TestCompleteValidatesCoordinates(t *testing.T) {
	b, _ := newTestBoard(t, 2, BoardOptions{ChunkSize: 2})
	id1, _, _, _ := b.Lease("w1", 0)
	if err := b.Complete(id1, 5, recordFor(testJobs(6)[5], 1)); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	wrong := recordFor(core.JobRef{Suite: "S", Technique: "T", Spec: "9999"}, 1)
	if err := b.Complete(id1, 0, wrong); err == nil {
		t.Fatal("completion with mismatched job coordinates accepted")
	}
}

func TestResumeMarksJournaledJobsDone(t *testing.T) {
	journal := core.NewMemoryCheckpoint()
	jobs := testJobs(3)
	for _, j := range jobs {
		if err := journal.Append(recordFor(j, 1)); err != nil {
			t.Fatal(err)
		}
	}
	b := NewBoard(jobs, BoardOptions{Journal: journal})
	select {
	case <-b.Done():
	default:
		t.Fatal("fully journaled board not done at construction")
	}
	if _, _, count, done := b.Lease("w1", 0); count != 0 || !done {
		t.Fatalf("lease on done board = count %d done %v, want 0 true", count, done)
	}
}

func TestWorkerLoopRunsStudyOverHTTP(t *testing.T) {
	jobs := testJobs(25)
	journal := core.NewMemoryCheckpoint()
	board := NewBoard(jobs, BoardOptions{ChunkSize: 4, TTL: 5 * time.Second, Journal: journal})
	coord, err := Serve("127.0.0.1:0", "digest-1", board)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	worker := func(id string) *Worker {
		return &Worker{
			BaseURL: "http://" + coord.Addr(),
			ID:      id,
			Digest:  "digest-1",
			Jobs:    jobs,
			Run: func(ctx context.Context, start int, refs []core.JobRef, emit func(int, *core.CheckpointRecord) error) error {
				for i, ref := range refs {
					if err := emit(start+i, recordFor(ref, i%2)); err != nil {
						return err
					}
				}
				return nil
			},
		}
	}

	// Two concurrent workers drain the board; each exits nil on "done".
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = worker(fmt.Sprintf("w%d", i)).Loop(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if journal.Len() != len(jobs) {
		t.Fatalf("journal holds %d records, want %d", journal.Len(), len(jobs))
	}
	if st := board.Status(); st.Done != len(jobs) || st.Mismatches != 0 {
		t.Fatalf("status = %+v, want all done, no mismatches", st)
	}
}

func TestCoordinatorRejectsDigestMismatch(t *testing.T) {
	jobs := testJobs(4)
	board := NewBoard(jobs, BoardOptions{Journal: core.NewMemoryCheckpoint()})
	coord, err := Serve("127.0.0.1:0", "digest-good", board)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	w := &Worker{
		BaseURL: "http://" + coord.Addr(),
		ID:      "skewed",
		Digest:  "digest-bad",
		Jobs:    jobs,
		Run: func(ctx context.Context, start int, refs []core.JobRef, emit func(int, *core.CheckpointRecord) error) error {
			t.Fatal("rejected worker ran jobs")
			return nil
		},
	}
	if err := w.Loop(context.Background()); !errors.Is(err, ErrRejected) {
		t.Fatalf("skewed worker got %v, want ErrRejected", err)
	}
	if journal := board.Status(); journal.Done != 0 {
		t.Fatalf("rejected worker completed jobs: %+v", journal)
	}
}

func TestStudyDigestDistinguishesSeeds(t *testing.T) {
	// Structural smoke: different seeds or technique lists change the digest.
	d1 := StudyDigest(1, []string{"A", "B"})
	d2 := StudyDigest(2, []string{"A", "B"})
	d3 := StudyDigest(1, []string{"A"})
	if d1 == d2 || d1 == d3 || d2 == d3 {
		t.Fatalf("digests collide: %s %s %s", d1, d2, d3)
	}
}
