package shard

import (
	"fmt"
	"sync"
	"time"

	"specrepair/internal/core"
	"specrepair/internal/telemetry"
)

// BoardOptions configures lease bookkeeping.
type BoardOptions struct {
	// TTL is how long a lease stays valid without a heartbeat; an expired
	// lease is reaped and its uncompleted jobs go back to the pending pool.
	// Defaults to 30s.
	TTL time.Duration
	// ChunkSize caps how many jobs one lease grants. Defaults to 16.
	ChunkSize int
	// Journal receives every accepted completion (required).
	Journal *core.Checkpoint
	// Telemetry, when non-nil, receives the shard.* coordinator counters.
	Telemetry *telemetry.Registry
	// Now is the clock (tests inject a fake one; defaults to time.Now).
	Now func() time.Time
}

type jobState uint8

const (
	statePending jobState = iota
	stateLeased
	stateDone
)

// lease is one outstanding grant of a contiguous job-range.
type lease struct {
	id      int64
	worker  string
	start   int
	count   int
	expires time.Time
	// stolen marks that a duplicate grant of this lease's uncompleted
	// remainder is already outstanding, so the range is not re-stolen while
	// both grants are live.
	stolen bool
	// isSteal marks a lease that was itself created as a duplicate grant.
	// Such a lease is never a steal victim, so a job has at most two live
	// grants — lease expiry, not cascading theft, covers the case where the
	// thief also stalls.
	isSteal bool
}

// remaining returns the lease's not-yet-done indices in order.
func (l *lease) remaining(state []jobState) []int {
	var out []int
	for i := l.start; i < l.start+l.count; i++ {
		if state[i] != stateDone {
			out = append(out, i)
		}
	}
	return out
}

// Board is the coordinator's authoritative view of the job space: which
// jobs are pending, leased, or done, and which leases are live. All methods
// are safe for concurrent use.
type Board struct {
	mu        sync.Mutex
	jobs      []core.JobRef
	index     map[core.JobRef]int
	state     []jobState
	cover     []int // number of live leases covering each job
	leases    map[int64]*lease
	nextLease int64
	doneCount int
	doneCh    chan struct{}

	ttl     time.Duration
	chunk   int
	journal *core.Checkpoint
	now     func() time.Time

	// mismatches counts duplicate completions whose record differed from
	// the journaled one — a determinism violation worth surfacing loudly.
	mismatches int64

	ctrLeases, ctrExpired, ctrSteals, ctrCompleted, ctrDuplicates, ctrHeartbeats, ctrRejected *telemetry.Counter
}

// NewBoard builds the board over the canonical job list. Jobs already
// present in the journal (a resumed coordinator) are marked done up front
// and never leased.
func NewBoard(jobs []core.JobRef, o BoardOptions) *Board {
	if o.TTL <= 0 {
		o.TTL = 30 * time.Second
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 16
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	b := &Board{
		jobs:    jobs,
		index:   make(map[core.JobRef]int, len(jobs)),
		state:   make([]jobState, len(jobs)),
		cover:   make([]int, len(jobs)),
		leases:  map[int64]*lease{},
		doneCh:  make(chan struct{}),
		ttl:     o.TTL,
		chunk:   o.ChunkSize,
		journal: o.Journal,
		now:     o.Now,

		ctrLeases:     o.Telemetry.Counter(telemetry.CtrShardLeases),
		ctrExpired:    o.Telemetry.Counter(telemetry.CtrShardExpired),
		ctrSteals:     o.Telemetry.Counter(telemetry.CtrShardSteals),
		ctrCompleted:  o.Telemetry.Counter(telemetry.CtrShardCompleted),
		ctrDuplicates: o.Telemetry.Counter(telemetry.CtrShardDuplicates),
		ctrHeartbeats: o.Telemetry.Counter(telemetry.CtrShardHeartbeats),
		ctrRejected:   o.Telemetry.Counter(telemetry.CtrShardRejected),
	}
	for i, j := range b.jobs {
		b.index[j] = i
	}
	for i, j := range b.jobs {
		if b.journal != nil && b.journal.Lookup(j.Suite, j.Technique, j.Spec) != nil {
			b.state[i] = stateDone
			b.doneCount++
		}
	}
	if b.doneCount == len(b.jobs) {
		close(b.doneCh)
	}
	return b
}

// Done is closed once every job has an accepted completion.
func (b *Board) Done() <-chan struct{} { return b.doneCh }

// AllDone reports whether every job has an accepted completion.
func (b *Board) AllDone() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.doneCount == len(b.jobs)
}

// reapExpired returns every job of an overdue lease to the pending pool
// (unless another live lease still covers it). Caller holds b.mu.
func (b *Board) reapExpired() {
	now := b.now()
	for id, l := range b.leases {
		if len(l.remaining(b.state)) == 0 {
			// Every job of the lease completed — the lease is spent, not
			// expired; just release it.
			delete(b.leases, id)
			continue
		}
		if now.Before(l.expires) {
			continue
		}
		delete(b.leases, id)
		b.ctrExpired.Inc()
		for i := l.start; i < l.start+l.count; i++ {
			if b.state[i] == stateDone {
				continue
			}
			b.cover[i]--
			if b.cover[i] <= 0 {
				b.cover[i] = 0
				b.state[i] = statePending
			}
		}
	}
}

// Lease grants a contiguous range of jobs to the worker. It prefers fresh
// pending ranges; when none exist it steals the uncompleted remainder of
// the straggler lease closest to expiry (at most one duplicate grant per
// lease at a time). The returned count is 0 when no work is available:
// done reports whether the whole study has completed, and the worker should
// retry later otherwise.
func (b *Board) Lease(worker string, max int) (id int64, start, count int, done bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reapExpired()
	if b.doneCount == len(b.jobs) {
		return 0, 0, 0, true
	}
	if max <= 0 || max > b.chunk {
		max = b.chunk
	}

	grant := func(start, count int, stolen bool) (int64, int, int, bool) {
		b.nextLease++
		l := &lease{
			id:      b.nextLease,
			worker:  worker,
			start:   start,
			count:   count,
			expires: b.now().Add(b.ttl),
			isSteal: stolen,
		}
		b.leases[l.id] = l
		for i := start; i < start+count; i++ {
			if b.state[i] != stateDone {
				b.state[i] = stateLeased
				b.cover[i]++
			}
		}
		b.ctrLeases.Inc()
		if stolen {
			b.ctrSteals.Inc()
		}
		return l.id, start, count, false
	}

	// Fresh work: the lowest-indexed contiguous pending run.
	for i := 0; i < len(b.state); i++ {
		if b.state[i] != statePending {
			continue
		}
		n := 0
		for i+n < len(b.state) && n < max && b.state[i+n] == statePending {
			n++
		}
		return grant(i, n, false)
	}

	// No fresh work: steal the remainder of the straggler lease closest to
	// expiry. The victim keeps running — whichever grant completes a job
	// first wins; the duplicate is dropped.
	var victim *lease
	for _, l := range b.leases {
		if l.stolen || l.isSteal || len(l.remaining(b.state)) == 0 {
			continue
		}
		if victim == nil || l.expires.Before(victim.expires) ||
			(l.expires.Equal(victim.expires) && l.id < victim.id) {
			victim = l
		}
	}
	if victim != nil {
		rem := victim.remaining(b.state)
		start := rem[0]
		n := 1
		for n < len(rem) && n < max && rem[n] == start+n {
			n++
		}
		victim.stolen = true
		return grant(start, n, true)
	}
	return 0, 0, 0, false
}

// Heartbeat extends a lease. It reports false when the lease is unknown —
// expired and reaped — in which case the worker should abandon the range
// (its jobs have gone back to the pool).
func (b *Board) Heartbeat(id int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reapExpired()
	b.ctrHeartbeats.Inc()
	l, ok := b.leases[id]
	if !ok {
		return false
	}
	l.expires = b.now().Add(b.ttl)
	return true
}

// Complete accepts one job completion. Resolution is first-wins and
// therefore deterministic in artifact terms: the first record journaled for
// a job is final, and every later completion of the same job — from a
// re-dispatched straggler range or a worker that outlived its lease — is
// dropped. A duplicate whose record differs from the journaled one is
// counted as a mismatch (jobs are deterministic, so a differing duplicate
// means a worker is broken). Completions are accepted even when the posting
// lease has already been reaped: the work is valid, first-wins still holds.
func (b *Board) Complete(leaseID int64, index int, rec *core.CheckpointRecord) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if index < 0 || index >= len(b.jobs) {
		return fmt.Errorf("completion index %d out of range [0,%d)", index, len(b.jobs))
	}
	want := b.jobs[index]
	if rec.Suite != want.Suite || rec.Technique != want.Technique || rec.Spec != want.Spec {
		return fmt.Errorf("completion for index %d names %s/%s/%s, want %s/%s/%s",
			index, rec.Suite, rec.Technique, rec.Spec, want.Suite, want.Technique, want.Spec)
	}
	if l, ok := b.leases[leaseID]; ok && index >= l.start && index < l.start+l.count {
		if b.cover[index] > 0 {
			b.cover[index]--
		}
	}
	if b.state[index] == stateDone {
		b.ctrDuplicates.Inc()
		if prev := b.journal.Lookup(want.Suite, want.Technique, want.Spec); prev != nil && *prev != *rec {
			b.mismatches++
		}
		return nil
	}
	if err := b.journal.Append(rec); err != nil {
		return fmt.Errorf("journaling completion: %w", err)
	}
	b.state[index] = stateDone
	b.doneCount++
	b.ctrCompleted.Inc()
	if b.doneCount == len(b.jobs) {
		close(b.doneCh)
	}
	return nil
}

// Status is a point-in-time snapshot of the board for monitoring and
// tests.
type Status struct {
	Total      int   `json:"total"`
	Done       int   `json:"done"`
	Pending    int   `json:"pending"`
	Leased     int   `json:"leased"`
	Leases     int   `json:"leases"`
	Mismatches int64 `json:"duplicate_mismatches"`
}

// Status snapshots the board.
func (b *Board) Status() Status {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := Status{Total: len(b.jobs), Done: b.doneCount, Leases: len(b.leases), Mismatches: b.mismatches}
	for _, s := range b.state {
		switch s {
		case statePending:
			st.Pending++
		case stateLeased:
			st.Leased++
		}
	}
	return st
}

// Index resolves a job's global index (-1 when unknown).
func (b *Board) Index(ref core.JobRef) int {
	if i, ok := b.index[ref]; ok {
		return i
	}
	return -1
}

// RejectWorker counts a worker turned away for a digest mismatch.
func (b *Board) RejectWorker() { b.ctrRejected.Inc() }
