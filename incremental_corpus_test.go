package specrepair

// Corpus-wide differential guard for the incremental candidate-evaluation
// layer: over the deterministic 1/200 benchmark slice, mutation-generated
// candidate streams must get byte-for-byte identical PassesAll verdicts from
// the long-lived incremental evaluator and the fresh per-candidate path
// (analyzer.Options.DisableIncremental). This is the contract every repair
// technique's candidate loop relies on.

import (
	"sync"
	"testing"

	"specrepair/internal/alloy/ast"
	"specrepair/internal/alloy/types"
	"specrepair/internal/analyzer"
	"specrepair/internal/bench"
	"specrepair/internal/mutation"
)

var (
	corpusOnce sync.Once
	corpusA4F  *bench.Suite
	corpusAR   *bench.Suite
	corpusErr  error
)

// corpusSuites generates (once) the 1/200 benchmark slice shared by the
// corpus differential test and BenchmarkIncrementalCandidates.
func corpusSuites(tb testing.TB) (*bench.Suite, *bench.Suite) {
	tb.Helper()
	corpusOnce.Do(func() {
		gen := bench.NewGenerator(nil)
		gen.Scale = benchScale
		corpusA4F, corpusAR, corpusErr = gen.Both()
	})
	if corpusErr != nil {
		tb.Fatalf("generating benchmark slice: %v", corpusErr)
	}
	return corpusA4F, corpusAR
}

// candidateStream enumerates up to max type-correct mutation candidates of
// the module, the same way the repair techniques' loops do (the base module
// first, then engine candidates, then conjunct drops).
func candidateStream(mod *ast.Module, max int) []*ast.Module {
	out := []*ast.Module{mod.Clone()}
	eng, err := mutation.NewEngine(mod)
	if err != nil {
		return out
	}
	for _, s := range eng.Sites() {
		for _, c := range eng.Candidates(s, mutation.BudgetRelations) {
			if len(out) >= max {
				return out
			}
			cand, err := eng.Apply(s.Site, c)
			if err != nil {
				continue
			}
			if _, err := types.Check(cand.Clone()); err != nil {
				continue
			}
			out = append(out, cand)
		}
		drops, err := mutation.DropConjunct(eng.Mod, s.Site)
		if err != nil {
			continue
		}
		for _, cand := range drops {
			if len(out) >= max {
				return out
			}
			out = append(out, cand)
		}
	}
	return out
}

// TestIncrementalCorpusDifferential pins incremental ≡ fresh across the
// whole benchmark slice.
func TestIncrementalCorpusDifferential(t *testing.T) {
	a4f, ar := corpusSuites(t)
	const perSpec = 25

	fresh := analyzer.New(analyzer.Options{DisableIncremental: true})
	specs, queries, incremental := 0, 0, 0
	for _, suite := range []*bench.Suite{a4f, ar} {
		for _, spec := range suite.Specs {
			specs++
			inc := analyzer.New(analyzer.Options{})
			ev := inc.Evaluator(spec.Faulty)
			for i, cand := range candidateStream(spec.Faulty, perSpec) {
				got, gotErr := ev.PassesAll(cand)
				want, wantErr := fresh.PassesAll(cand)
				if (gotErr != nil) != (wantErr != nil) {
					t.Fatalf("%s/%s candidate %d: error mismatch: incremental=%v fresh=%v",
						suite.Name, spec.Name, i, gotErr, wantErr)
				}
				if got != want {
					t.Fatalf("%s/%s candidate %d: incremental=%v fresh=%v",
						suite.Name, spec.Name, i, got, want)
				}
				queries++
			}
			incremental += int(ev.Stats().Queries)
		}
	}
	if queries == 0 {
		t.Fatal("no candidates were evaluated")
	}
	if incremental == 0 {
		t.Fatal("every query fell back to the fresh path; the incremental layer is dead")
	}
	t.Logf("%d specs, %d candidate verdicts compared (%d answered incrementally)",
		specs, queries, incremental)
}

// BenchmarkIncrementalCandidates measures candidate-evaluation throughput
// (verdicts per second) of the long-lived incremental session against the
// fresh per-candidate path on the same mutation streams over the 1/200
// slice. The incremental arm must be at least ~2x the fresh arm; the gap
// comes from reusing bounds, translation, and learned clauses across the
// stream.
func BenchmarkIncrementalCandidates(b *testing.B) {
	a4f, ar := corpusSuites(b)
	// Repair loops evaluate long candidate streams (BeAFix exhausts whole
	// mutation budgets), so the benchmark replays deeper streams than the
	// differential test to weight the session's steady state, not its
	// warm-up.
	const perSpec = 60

	type stream struct {
		base  *ast.Module
		cands []*ast.Module
	}
	var streams []stream
	total := 0
	for _, suite := range []*bench.Suite{a4f, ar} {
		for _, spec := range suite.Specs {
			s := stream{base: spec.Faulty, cands: candidateStream(spec.Faulty, perSpec)}
			total += len(s.cands)
			streams = append(streams, s)
		}
	}

	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			an := analyzer.New(analyzer.Options{DisableIncremental: true})
			for _, s := range streams {
				for _, cand := range s.cands {
					if _, err := an.PassesAll(cand); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		b.ReportMetric(float64(total*b.N)/b.Elapsed().Seconds(), "cand/s")
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			an := analyzer.New(analyzer.Options{})
			for _, s := range streams {
				ev := an.Evaluator(s.base)
				for _, cand := range s.cands {
					if _, err := ev.PassesAll(cand); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		b.ReportMetric(float64(total*b.N)/b.Elapsed().Seconds(), "cand/s")
	})
}
