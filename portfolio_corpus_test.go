package specrepair

// Corpus-wide differential guard for the portfolio SAT layer: over the
// deterministic 1/200 benchmark slice, REP scoring (Equisat of candidate
// against ground truth) must give byte-for-byte identical verdicts with
// portfolio racing on (analyzer.Options.SATWorkers > 1) and off. This is the
// contract that keeps study artifacts byte-identical under -portfolio.

import (
	"testing"

	"specrepair/internal/analyzer"
	"specrepair/internal/bench"
	"specrepair/internal/telemetry"
)

func TestPortfolioCorpusDifferential(t *testing.T) {
	a4f, ar := corpusSuites(t)
	const perSpec = 8

	single := analyzer.New(analyzer.Options{})
	// SATHardThreshold 1 forces every fresh verdict query to escalate to
	// racing — at corpus-slice sizes none would cross the default threshold,
	// and the test would silently compare two single-solver runs.
	reg := telemetry.New()
	raced := analyzer.New(analyzer.Options{
		SATWorkers:       4,
		SATHardThreshold: 1,
		Telemetry:        telemetry.NewCollector(reg),
	})
	specs, queries := 0, 0
	for _, suite := range []*bench.Suite{a4f, ar} {
		for _, spec := range suite.Specs {
			specs++
			for i, cand := range candidateStream(spec.Faulty, perSpec) {
				want, wantErr := single.Equisat(spec.GroundTruth, cand)
				got, gotErr := raced.Equisat(spec.GroundTruth, cand)
				if (gotErr != nil) != (wantErr != nil) {
					t.Fatalf("%s/%s candidate %d: error mismatch: portfolio=%v single=%v",
						suite.Name, spec.Name, i, gotErr, wantErr)
				}
				if got != want {
					t.Fatalf("%s/%s candidate %d: portfolio=%v single=%v",
						suite.Name, spec.Name, i, got, want)
				}
				queries++
			}
		}
	}
	if queries == 0 {
		t.Fatal("no candidates were evaluated")
	}
	raced0 := reg.CounterValue(telemetry.CtrPortfolioSolves)
	if raced0 == 0 {
		t.Fatal("no query escalated to racing; the portfolio layer is dead")
	}
	t.Logf("%d specs, %d equisat verdicts compared (%d raced)", specs, queries, raced0)
}
