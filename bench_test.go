package specrepair

// The benchmark harness regenerates the data behind every table and figure
// of the paper's evaluation on a deterministic 1/200 slice of the corpora
// (full-scale regeneration is cmd/experiments -all), plus ablation
// benchmarks for the design choices called out in DESIGN.md:
//
//	BenchmarkTableI            REP evaluation grid (all 12 techniques)
//	BenchmarkFigure2           TM/SM similarity means
//	BenchmarkFigure3           Pearson correlation matrix
//	BenchmarkTableII           hybrid combinations
//	BenchmarkFigure4           hybrid Venn regions
//	BenchmarkAblationSAT       CDCL vs no-learning vs naive DPLL, plus
//	                           portfolio/inprocessing arms on a split instance
//	BenchmarkAblationPruning   BeAFix with vs without pruning
//	BenchmarkAblationFaultLoc  localized vs exhaustive mutation ordering
//	BenchmarkAblationRounds    Multi-Round REP as rounds grow
//
// plus microbenchmarks of the substrate (parse, translate, solve).

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"specrepair/internal/alloy/parser"
	"specrepair/internal/analyzer"
	"specrepair/internal/bench"
	"specrepair/internal/core"
	"specrepair/internal/experiments"
	"specrepair/internal/faultloc"
	"specrepair/internal/llm"
	"specrepair/internal/metrics"
	"specrepair/internal/repair"
	"specrepair/internal/repair/beafix"
	"specrepair/internal/repair/multiround"
	"specrepair/internal/sat"
)

// benchScale divides the corpora for the table/figure benchmarks.
const benchScale = 200

var (
	studyOnce sync.Once
	study     *experiments.Study
	studyErr  error
)

func sliceStudy(b *testing.B) *experiments.Study {
	b.Helper()
	studyOnce.Do(func() {
		study, studyErr = experiments.Run(1, benchScale, 0, nil)
	})
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return study
}

// BenchmarkTableI regenerates the REP grid of Table I on the benchmark
// slice: all twelve techniques over both suites, scored by
// equisatisfiability against ground truth.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		studyOnce = sync.Once{} // force a fresh evaluation each iteration
		s := sliceStudy(b)
		if len(s.TableI()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure2 regenerates the similarity means of Figure 2 from the
// evaluation grid.
func BenchmarkFigure2(b *testing.B) {
	s := sliceStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.Figure2()
		if len(rows) != 12 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFigure3 regenerates the Pearson correlation matrix of Figure 3.
func BenchmarkFigure3(b *testing.B) {
	s := sliceStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		names, matrix, _ := s.Figure3()
		if len(names) != 12 || len(matrix) != 12 {
			b.Fatal("wrong matrix shape")
		}
	}
}

// BenchmarkTableII regenerates the 32 hybrid combinations of Table II.
func BenchmarkTableII(b *testing.B) {
	s := sliceStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.TableII()) != 32 {
			b.Fatal("wrong hybrid count")
		}
	}
}

// BenchmarkFigure4 regenerates the Venn regions of Figure 4.
func BenchmarkFigure4(b *testing.B) {
	s := sliceStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells := s.Figure4()
		if len(cells) != 32 {
			b.Fatal("wrong cell count")
		}
	}
}

// BenchmarkStudySliceCache runs the same study slice with the shared
// analysis cache disabled and enabled. The cached leg reports its hit rate
// and the number of actual solver runs ("solves", i.e. cache misses); the
// hit rate must be nonzero — techniques re-validate the same faulty spec
// and near-identical candidates constantly, which is exactly what the cache
// collapses.
func BenchmarkStudySliceCache(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		for i := 0; i < b.N; i++ {
			s, err := experiments.RunStudy(experiments.Config{
				Seed:         1,
				Scale:        benchScale,
				DisableCache: disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !disable {
				stats := s.CacheStats()
				if stats.Hits == 0 {
					b.Fatal("shared cache recorded no hits on the study slice")
				}
				b.ReportMetric(100*stats.HitRate(), "hit%")
				b.ReportMetric(float64(stats.Misses), "solves")
				b.Logf("analysis cache: %s", stats)
			}
		}
	}
	b.Run("uncached", func(b *testing.B) { run(b, true) })
	b.Run("cached", func(b *testing.B) { run(b, false) })
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

// unsatThreeSAT generates a fixed unsatisfiable random 3-SAT instance near
// the phase-transition ratio (seed-pinned; unsatisfiability is asserted by
// the CDCL leg of the benchmark).
func unsatThreeSAT(numVars int) [][]sat.Lit {
	rng := rand.New(rand.NewSource(77))
	numClauses := numVars * 43 / 10
	cnf := make([][]sat.Lit, 0, numClauses)
	for i := 0; i < numClauses; i++ {
		seen := map[int]bool{}
		var cl []sat.Lit
		for len(cl) < 3 {
			v := rng.Intn(numVars)
			if seen[v] {
				continue
			}
			seen[v] = true
			cl = append(cl, sat.MkLit(v, rng.Intn(2) == 0))
		}
		cnf = append(cnf, cl)
	}
	return cnf
}

// BenchmarkAblationSAT compares the full CDCL solver against the
// learning-disabled variant and the naive DPLL reference on a hard UNSAT
// random 3-SAT instance. Clause learning is the decisive ingredient: at 110
// variables the gap to chronological backtracking is an order of magnitude,
// and the naive reference needs a smaller instance to finish at all.
func BenchmarkAblationSAT(b *testing.B) {
	large := unsatThreeSAT(110)
	small := unsatThreeSAT(80)
	b.Run("cdcl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sat.NewSolver(sat.Options{})
			for _, cl := range large {
				s.AddClause(cl...)
			}
			if s.Solve() != sat.StatusUnsat {
				b.Fatal("expected UNSAT")
			}
		}
	})
	b.Run("cdcl-noreduce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sat.NewSolver(sat.Options{DisableReduce: true})
			for _, cl := range large {
				s.AddClause(cl...)
			}
			if s.Solve() != sat.StatusUnsat {
				b.Fatal("expected UNSAT")
			}
		}
	})
	b.Run("no-learning", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sat.NewSolver(sat.Options{DisableLearning: true})
			for _, cl := range large {
				s.AddClause(cl...)
			}
			if s.Solve() != sat.StatusUnsat {
				b.Fatal("expected UNSAT")
			}
		}
	})
	b.Run("naive-dpll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sat.NewNaive()
			for _, cl := range small { // smaller: naive blows up exponentially
				s.AddClause(cl...)
			}
			if st, _ := s.Solve(); st != sat.StatusUnsat {
				b.Fatal("expected UNSAT")
			}
		}
	})

	// The split arms run the same hard instance through a Tseitin-style
	// clause splitting (the redundancy-heavy shape circuit translation
	// emits): auxiliaries double the clause count and pollute clause
	// learning. Inprocessing eliminates every auxiliary and recovers the
	// core, which is what the portfolio arm races on.
	encVars, encoded := splitThreeSAT(130)
	b.Run("cdcl-split", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sat.NewSolver(sat.Options{})
			for _, cl := range encoded {
				s.AddClause(cl...)
			}
			if s.Solve() != sat.StatusUnsat {
				b.Fatal("expected UNSAT")
			}
		}
	})
	b.Run("inprocess-split", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ip := sat.Inprocess(encVars, encoded, nil, sat.InprocessOptions{})
			if ip.Unsat {
				continue // refuted during simplification: even better
			}
			if ip.Stats.FinalClauses >= ip.Stats.OrigClauses {
				b.Fatal("inprocessing failed to shrink the split encoding")
			}
			s := sat.NewSolver(sat.Options{})
			s.Grow(encVars)
			for _, cl := range ip.Clauses {
				s.AddClause(cl...)
			}
			if s.Solve() != sat.StatusUnsat {
				b.Fatal("expected UNSAT")
			}
			b.ReportMetric(float64(ip.Stats.OrigClauses-ip.Stats.FinalClauses), "clauses-removed/op")
			b.ReportMetric(float64(ip.Stats.VarsEliminated), "vars-elim/op")
		}
	})
	b.Run("portfolio-split", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := sat.NewPortfolio(sat.PortfolioOptions{Workers: 2, FreeRace: true})
			for _, cl := range encoded {
				p.AddClause(cl...)
			}
			if p.Solve() != sat.StatusUnsat {
				b.Fatal("expected UNSAT")
			}
		}
	})
}

// splitThreeSAT Tseitin-splits each ternary clause of the hard instance into
// a (a ∨ b ∨ g) ∧ (¬g ∨ c) pair chained through a fresh auxiliary variable.
// The instance is equisatisfiable (and UNSAT like the core); each auxiliary
// occurs exactly once per polarity, so bounded variable elimination can undo
// the encoding.
func splitThreeSAT(numVars int) (int, [][]sat.Lit) {
	cnf := unsatThreeSAT(numVars)
	next := numVars
	out := make([][]sat.Lit, 0, 2*len(cnf))
	for _, cl := range cnf {
		g := next
		next++
		out = append(out,
			[]sat.Lit{cl[0], cl[1], sat.PosLit(g)},
			[]sat.Lit{sat.NegLit(g), cl[2]},
		)
	}
	return next, out
}

const ablationFaultySrc = `
sig Node { next: lone Node, prev: set Node }
fact Wiring {
  all n: Node | n.prev = next.n
  all n: Node | n in n.next
}
assert NoSelf { no n: Node | n in n.next }
check NoSelf for 3
run { some Node } for 3
`

// BenchmarkAblationPruning compares BeAFix's bounded-exhaustive search with
// and without its pruning strategies on the same faulty model.
func BenchmarkAblationPruning(b *testing.B) {
	mod, err := parser.Parse(ablationFaultySrc)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, disable bool) {
		for i := 0; i < b.N; i++ {
			tool := beafix.New(beafix.Options{DisablePruning: disable})
			out, err := tool.Repair(context.Background(), repair.Problem{Name: "ablation", Faulty: mod.Clone()})
			if err != nil {
				b.Fatal(err)
			}
			if !out.Repaired {
				b.Fatal("expected a repair")
			}
			b.ReportMetric(float64(out.Stats.AnalyzerCalls), "analyzer-calls/op")
		}
	}
	b.Run("pruned", func(b *testing.B) { run(b, false) })
	b.Run("unpruned", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationFaultLoc compares suspiciousness-guided localization
// against scoring-free enumeration of the same sites.
func BenchmarkAblationFaultLoc(b *testing.B) {
	mod, err := parser.Parse(ablationFaultySrc)
	if err != nil {
		b.Fatal(err)
	}
	an := analyzer.New(analyzer.Options{})
	failing, passing, err := faultloc.CollectInstances(an, mod)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("localized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ranked, err := faultloc.Localize(mod, failing, passing)
			if err != nil {
				b.Fatal(err)
			}
			if len(ranked) == 0 || ranked[0].Score == 0 {
				b.Fatal("localization produced no signal")
			}
		}
	})
	b.Run("unranked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// The scoring-free baseline still enumerates sites but assigns
			// uniform suspicion (what repair degrades to without faultloc).
			ranked, err := faultloc.Localize(mod, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(ranked) == 0 {
				b.Fatal("no sites")
			}
		}
	})
}

// BenchmarkAblationRounds measures Multi-Round repair capability as the
// round budget grows, on a fixed mini-corpus.
func BenchmarkAblationRounds(b *testing.B) {
	gen := bench.NewGenerator(nil)
	gen.Scale = 400
	suite, err := gen.Alloy4Fun()
	if err != nil {
		b.Fatal(err)
	}
	an := analyzer.New(analyzer.Options{})
	for _, rounds := range []int{1, 2, 4, 8} {
		rounds := rounds
		b.Run(map[int]string{1: "rounds-1", 2: "rounds-2", 4: "rounds-4", 8: "rounds-8"}[rounds], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				repaired := 0
				for _, spec := range suite.Specs {
					tool := multiround.New(multiround.Options{
						Feedback: llm.FeedbackNone,
						Rounds:   rounds,
						Client:   llm.NewSimulatedModel(1),
						Analyzer: an,
					})
					out, err := tool.Repair(context.Background(), spec.Problem())
					if err != nil {
						b.Fatal(err)
					}
					if out.Candidate != nil {
						if rep, _ := metrics.REP(an, spec.GroundTruth, out.Candidate); rep == 1 {
							repaired++
						}
					}
				}
				b.ReportMetric(float64(repaired), "repairs/op")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Substrate microbenchmarks
// ---------------------------------------------------------------------------

func BenchmarkParseModule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse(ablationFaultySrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeModule(b *testing.B) {
	mod, err := parser.Parse(ablationFaultySrc)
	if err != nil {
		b.Fatal(err)
	}
	an := analyzer.New(analyzer.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.ExecuteAll(mod); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEquisat(b *testing.B) {
	mod, err := parser.Parse(ablationFaultySrc)
	if err != nil {
		b.Fatal(err)
	}
	an := analyzer.New(analyzer.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.Equisat(mod, mod); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = core.TechniqueNames // document the registry dependency of the study benches
