// Quickstart: parse the paper's faulty hotel-key specification (Figure 1),
// analyze it to expose the bug, repair it with one technique, and verify
// the fix — the whole library surface in one file.
package main

import (
	"context"
	"fmt"
	"os"

	"specrepair/internal/alloy/parser"
	"specrepair/internal/alloy/printer"
	"specrepair/internal/analyzer"
	"specrepair/internal/repair"
	"specrepair/internal/repair/atr"
)

// hotelSrc is the hotel key-management model of the paper's Figure 1,
// adapted to the library's Alloy subset. The bug: "no g.gkeys" forbids
// check-in by any guest already holding a key — the intended constraint is
// merely that the issued key be new to the guest. The embedded commands
// are the property oracle: CanRebook must be satisfiable, and the run
// commands must find instances.
const hotelSrc = `
abstract sig Key {}
sig RoomKey extends Key {}
sig Room {
  keys: set Key
}
sig Guest {
  gkeys: set Key
}
one sig FrontDesk {
  lastKey: Room -> lone RoomKey,
  occupant: Room -> lone Guest
}

fact KeysAreRoomKeys {
  all g: Guest | g.gkeys in RoomKey
  all r: Room | r.keys in RoomKey
}

pred checkIn[g: Guest, r: Room, k: RoomKey] {
  no FrontDesk.occupant[r]
  no g.gkeys
  FrontDesk.occupant' = FrontDesk.occupant + r->g
  g.gkeys' = g.gkeys + k
}

run checkIn for 3 expect 1
run { some g: Guest, r: Room, k: RoomKey | some g.gkeys and checkIn[g, r, k] } for 3 expect 1
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Parse.
	mod, err := parser.Parse(hotelSrc)
	if err != nil {
		return err
	}
	fmt.Println("parsed the hotel model:",
		len(mod.Sigs), "sigs,", len(mod.Preds), "preds,", len(mod.Commands), "commands")

	// 2. Analyze: the second run command demands that a guest who already
	// holds keys can still check in — the faulty constraint forbids it.
	an := analyzer.New(analyzer.Options{})
	results, err := an.ExecuteAll(mod)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("  %s %s: sat=%v passed=%v\n", r.Command.Kind, r.Command.Name, r.Sat, r.Passed())
	}

	// 3. Repair with ATR (counterexample/instance difference analysis plus
	// templates, validated against the embedded commands).
	tool := atr.New(atr.Options{})
	out, err := tool.Repair(context.Background(), repair.Problem{Name: "hotel", Faulty: mod})
	if err != nil {
		return err
	}
	if !out.Repaired {
		return fmt.Errorf("ATR could not repair the model (tried %d candidates)", out.Stats.CandidatesTried)
	}
	fmt.Printf("repaired after %d candidates / %d analyzer calls\n",
		out.Stats.CandidatesTried, out.Stats.AnalyzerCalls)

	// 4. Verify: every command passes on the repaired model.
	ok, err := repair.OracleAllCommandsPass(context.Background(), an, out.Candidate)
	if err != nil {
		return err
	}
	fmt.Println("repaired model passes its oracle:", ok)
	fmt.Println("\n--- repaired specification ---")
	fmt.Print(printer.Module(out.Candidate))
	return nil
}
