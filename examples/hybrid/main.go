// Hybrid demonstrates the paper's best pairing — ATR followed by
// Multi-Round_None — on a slice of the Alloy4Fun benchmark, reporting each
// tool's individual repairs, their overlap, and the union (the hybrid's
// capability), exactly the quantities behind Table II and Figure 4.
package main

import (
	"context"
	"fmt"
	"os"

	"specrepair/internal/analyzer"
	"specrepair/internal/bench"
	"specrepair/internal/core"
	"specrepair/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hybrid:", err)
		os.Exit(1)
	}
}

func run() error {
	// A 1/100 slice of Alloy4Fun keeps this example under a minute.
	gen := bench.NewGenerator(nil)
	gen.Scale = 100
	suite, err := gen.Alloy4Fun()
	if err != nil {
		return err
	}
	fmt.Printf("benchmark slice: %d faulty specifications\n\n", len(suite.Specs))

	an := analyzer.New(analyzer.Options{})
	atrFactory, err := core.FactoryByName(1, "ATR")
	if err != nil {
		return err
	}
	mrFactory, err := core.FactoryByName(1, "Multi-Round_None")
	if err != nil {
		return err
	}
	atrTool, mrTool := atrFactory.New(), mrFactory.New()

	atrFixed := map[string]bool{}
	mrFixed := map[string]bool{}
	for _, spec := range suite.Specs {
		if out, err := atrTool.Repair(context.Background(), spec.Problem()); err == nil && out.Candidate != nil {
			if rep, _ := metrics.REP(an, spec.GroundTruth, out.Candidate); rep == 1 {
				atrFixed[spec.Name] = true
			}
		}
		if out, err := mrTool.Repair(context.Background(), spec.Problem()); err == nil && out.Candidate != nil {
			if rep, _ := metrics.REP(an, spec.GroundTruth, out.Candidate); rep == 1 {
				mrFixed[spec.Name] = true
			}
		}
	}

	overlap, union := 0, 0
	for _, spec := range suite.Specs {
		a, m := atrFixed[spec.Name], mrFixed[spec.Name]
		if a && m {
			overlap++
		}
		if a || m {
			union++
		}
	}
	total := len(suite.Specs)
	fmt.Printf("ATR alone:              %3d / %d\n", len(atrFixed), total)
	fmt.Printf("Multi-Round_None alone: %3d / %d\n", len(mrFixed), total)
	fmt.Printf("overlap:                %3d\n", overlap)
	fmt.Printf("hybrid union:           %3d / %d (%.1f%%)\n",
		union, total, 100*float64(union)/float64(total))
	fmt.Println("\nspecs only the LLM technique repaired:")
	for _, spec := range suite.Specs {
		if mrFixed[spec.Name] && !atrFixed[spec.Name] {
			fmt.Printf("  %s (injected fault depth %d)\n", spec.Name, spec.Depth)
		}
	}
	return nil
}
