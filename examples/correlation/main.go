// Correlation reproduces the RQ2 analysis on a benchmark slice: per-spec
// similarity (TM/SM) of several techniques' candidates against ground
// truth, then pairwise Pearson correlations — traditional tools cluster
// tightly while LLM-based ones diverge, which is the complementarity signal
// motivating the hybrids of RQ3.
package main

import (
	"context"
	"fmt"
	"os"

	"specrepair/internal/alloy/printer"
	"specrepair/internal/bench"
	"specrepair/internal/core"
	"specrepair/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "correlation:", err)
		os.Exit(1)
	}
}

func run() error {
	gen := bench.NewGenerator(nil)
	gen.Scale = 100
	suite, err := gen.Alloy4Fun()
	if err != nil {
		return err
	}
	fmt.Printf("benchmark slice: %d specifications\n\n", len(suite.Specs))

	techniques := []string{"ATR", "BeAFix", "Single-Round_Loc", "Multi-Round_None"}
	vectors := map[string][]float64{}
	for _, name := range techniques {
		factory, err := core.FactoryByName(1, name)
		if err != nil {
			return err
		}
		tool := factory.New()
		var tms []float64
		for _, spec := range suite.Specs {
			gtSrc := printer.Module(spec.GroundTruth)
			candSrc := printer.Module(spec.Faulty)
			if out, err := tool.Repair(context.Background(), spec.Problem()); err == nil && out.Candidate != nil {
				candSrc = printer.Module(out.Candidate)
			}
			tms = append(tms, metrics.TokenMatch(gtSrc, candSrc))
		}
		vectors[name] = tms
		fmt.Printf("%-20s mean TM = %.3f\n", name, metrics.Mean(tms))
	}

	fmt.Println("\npairwise Pearson correlations (TM vectors):")
	for i, a := range techniques {
		for _, b := range techniques[i+1:] {
			r, p := metrics.Pearson(vectors[a], vectors[b])
			fmt.Printf("  %-20s ~ %-20s r = %+.3f (p = %.3g)\n", a, b, r, p)
		}
	}
	return nil
}
