// Hotelrepair runs all twelve repair techniques of the study on the
// paper's hotel-key bug and compares their outcomes: repair verdict, REP
// against a reference fix, and token/syntax similarity — a miniature of
// the full study on a single specification.
package main

import (
	"context"
	"fmt"
	"os"

	"specrepair/internal/alloy/parser"
	"specrepair/internal/alloy/printer"
	"specrepair/internal/analyzer"
	"specrepair/internal/core"
	"specrepair/internal/metrics"
	"specrepair/internal/repair"
)

const faultySrc = `
abstract sig Key {}
sig RoomKey extends Key {}
sig Room { keys: set Key }
sig Guest { gkeys: set Key }
one sig FrontDesk {
  lastKey: Room -> lone RoomKey,
  occupant: Room -> lone Guest
}

fact KeysAreRoomKeys {
  all g: Guest | g.gkeys in RoomKey
  all r: Room | r.keys in RoomKey
}

pred checkIn[g: Guest, r: Room, k: RoomKey] {
  no FrontDesk.occupant[r]
  no g.gkeys
  FrontDesk.occupant' = FrontDesk.occupant + r->g
  g.gkeys' = g.gkeys + k
}

run checkIn for 3 expect 1
run { some g: Guest, r: Room, k: RoomKey | some g.gkeys and checkIn[g, r, k] } for 3 expect 1
`

// groundTruth replaces the overly-restrictive "no g.gkeys" with the
// intended "k not in g.gkeys" — the fix the paper's Section II discusses.
const groundTruth = `
abstract sig Key {}
sig RoomKey extends Key {}
sig Room { keys: set Key }
sig Guest { gkeys: set Key }
one sig FrontDesk {
  lastKey: Room -> lone RoomKey,
  occupant: Room -> lone Guest
}

fact KeysAreRoomKeys {
  all g: Guest | g.gkeys in RoomKey
  all r: Room | r.keys in RoomKey
}

pred checkIn[g: Guest, r: Room, k: RoomKey] {
  no FrontDesk.occupant[r]
  k not in g.gkeys
  FrontDesk.occupant' = FrontDesk.occupant + r->g
  g.gkeys' = g.gkeys + k
}

run checkIn for 3 expect 1
run { some g: Guest, r: Room, k: RoomKey | some g.gkeys and checkIn[g, r, k] } for 3 expect 1
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hotelrepair:", err)
		os.Exit(1)
	}
}

func run() error {
	faulty, err := parser.Parse(faultySrc)
	if err != nil {
		return err
	}
	gt, err := parser.Parse(groundTruth)
	if err != nil {
		return err
	}
	an := analyzer.New(analyzer.Options{})
	gtSrc := printer.Module(gt)

	problem := repair.Problem{
		Name:   "hotel",
		Faulty: faulty,
		Hints: repair.Hints{
			Location:       "pred checkIn",
			FixDescription: "replace `no g.gkeys` with `k not in g.gkeys`",
		},
	}

	fmt.Printf("%-24s %8s %4s %7s %7s\n", "technique", "claimed", "REP", "TM", "SM")
	for _, factory := range core.StudyFactories(1) {
		tool := factory.New()
		out, err := tool.Repair(context.Background(), problem)
		if err != nil {
			// ARepair needs tests; report and continue.
			fmt.Printf("%-24s %8s\n", factory.Name, "n/a")
			continue
		}
		candSrc := printer.Module(faulty)
		rep := 0
		if out.Candidate != nil {
			candSrc = printer.Module(out.Candidate)
			rep, err = metrics.REP(an, gt, out.Candidate)
			if err != nil {
				return err
			}
		}
		fmt.Printf("%-24s %8v %4d %7.3f %7.3f\n",
			factory.Name, out.Repaired, rep,
			metrics.TokenMatch(gtSrc, candSrc), metrics.SyntaxMatch(gtSrc, candSrc))
	}
	return nil
}
